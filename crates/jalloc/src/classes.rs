//! JeMalloc-style size classes.

use vmem::PAGE_SIZE;

/// Largest size served from slabs; bigger requests get page-granular
/// extents. Matches jemalloc's 14 KiB small/large boundary for 4 KiB pages.
pub const SMALL_MAX: u64 = 14 * 1024;

/// The size-class table.
///
/// Classes are 16-byte quantum-spaced up to 128 bytes, then four per size
/// doubling (jemalloc's layout), ending at [`SMALL_MAX`]. The smallest class
/// is 16 bytes — one shadow-map granule, which is why one mark bit per
/// 16 bytes "is sufficient to uniquely distinguish each allocation" (§3.2).
///
/// # Example
///
/// ```
/// use jalloc::SizeClasses;
/// let classes = SizeClasses::new();
/// let idx = classes.class_for(100).unwrap();
/// assert_eq!(classes.size_of(idx), 112);
/// assert!(classes.class_for(1 << 20).is_none(), "large sizes have no class");
/// ```
#[derive(Clone, Debug)]
pub struct SizeClasses {
    sizes: Vec<u64>,
}

impl SizeClasses {
    /// Builds the standard table.
    pub fn new() -> Self {
        let mut sizes: Vec<u64> = (1..=8).map(|i| i * 16).collect(); // 16..=128
        let mut base = 128u64;
        while base < SMALL_MAX {
            let step = base / 4;
            for i in 1..=4 {
                let s = base + i * step;
                if s <= SMALL_MAX {
                    sizes.push(s);
                }
            }
            base *= 2;
        }
        SizeClasses { sizes }
    }

    /// Number of classes.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size in bytes of class `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn size_of(&self, idx: usize) -> u64 {
        self.sizes[idx]
    }

    /// The smallest class that fits `size` bytes, or `None` if the request
    /// is large (> [`SMALL_MAX`]).
    pub fn class_for(&self, size: u64) -> Option<usize> {
        if size > SMALL_MAX {
            return None;
        }
        Some(self.sizes.partition_point(|&s| s < size.max(1)))
    }

    /// Pages per slab for class `idx`: enough for at least 16 regions for
    /// sub-KiB classes and at least 4 regions above, rounded so the slab is
    /// a whole number of pages with minimal tail waste.
    pub fn slab_pages(&self, idx: usize) -> u64 {
        let class = self.size_of(idx);
        let min_regions = if class <= 1024 { 16 } else { 4 };
        let bytes = class * min_regions;
        bytes.div_ceil(PAGE_SIZE as u64)
    }

    /// Regions per slab for class `idx`.
    pub fn regions_per_slab(&self, idx: usize) -> u64 {
        self.slab_pages(idx) * PAGE_SIZE as u64 / self.size_of(idx)
    }
}

impl Default for SizeClasses {
    fn default() -> Self {
        SizeClasses::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_quantum_spaced_low() {
        let c = SizeClasses::new();
        assert!(c.sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(&c.sizes[..8], &[16, 32, 48, 64, 80, 96, 112, 128]);
    }

    #[test]
    fn four_classes_per_doubling() {
        let c = SizeClasses::new();
        // Between 128 and 256 there are exactly 4 classes: 160 192 224 256.
        let mid: Vec<u64> =
            c.sizes.iter().copied().filter(|&s| s > 128 && s <= 256).collect();
        assert_eq!(mid, vec![160, 192, 224, 256]);
    }

    #[test]
    fn class_for_rounds_up() {
        let c = SizeClasses::new();
        for (req, want) in [(1, 16), (16, 16), (17, 32), (129, 160), (14336, 14336)] {
            let idx = c.class_for(req).unwrap();
            assert_eq!(c.size_of(idx), want, "req={req}");
        }
        assert!(c.class_for(SMALL_MAX + 1).is_none());
    }

    #[test]
    fn every_class_fits_its_requests() {
        let c = SizeClasses::new();
        for req in 1..=SMALL_MAX {
            let idx = c.class_for(req).unwrap();
            let got = c.size_of(idx);
            assert!(got >= req);
            if idx > 0 {
                assert!(c.size_of(idx - 1) < req, "not the tightest class for {req}");
            }
        }
    }

    #[test]
    fn slabs_hold_enough_regions() {
        let c = SizeClasses::new();
        for idx in 0..c.count() {
            let regions = c.regions_per_slab(idx);
            let min = if c.size_of(idx) <= 1024 { 16 } else { 4 };
            assert!(regions >= min, "class {} has {regions} regions", c.size_of(idx));
            // Whole number of regions never overruns the slab.
            assert!(regions * c.size_of(idx) <= c.slab_pages(idx) * PAGE_SIZE as u64);
        }
    }

    #[test]
    fn largest_class_is_small_max() {
        let c = SizeClasses::new();
        assert_eq!(*c.sizes.last().unwrap(), SMALL_MAX);
    }
}
