//! Allocator statistics.

/// Counters describing a [`crate::JAlloc`]'s state and history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AllocStats {
    /// Bytes in live allocations, rounded to their size class / page span.
    /// This is the "total memory use of the application" against which the
    /// quarantine threshold is compared (§3.2 "When to Sweep").
    pub allocated_bytes: u64,
    /// Bytes the caller actually requested (before class rounding and the
    /// +1 `end()` padding).
    pub requested_bytes: u64,
    /// Bytes in active extents (slabs with ≥1 live region + large).
    pub active_extent_bytes: u64,
    /// `malloc` calls.
    pub mallocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// `malloc` fast paths served from the tcache.
    pub tcache_hits: u64,
    /// Slabs created.
    pub slabs_created: u64,
    /// Extents recycled from the free cache.
    pub extent_recycles: u64,
    /// Fresh extents mapped from the OS.
    pub fresh_maps: u64,
    /// Pages decommitted by purging.
    pub purged_pages: u64,
    /// Explicit `purge_all` calls (MineSweeper triggers one per sweep).
    pub purge_all_calls: u64,
}

impl AllocStats {
    /// Live allocation count.
    pub fn live_allocations(&self) -> u64 {
        self.mallocs - self.frees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_allocations_is_mallocs_minus_frees() {
        let s = AllocStats { mallocs: 10, frees: 4, ..Default::default() };
        assert_eq!(s.live_allocations(), 6);
    }
}
