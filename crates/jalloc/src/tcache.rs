//! Thread-local cache of small regions.
//!
//! JeMalloc's tcache absorbs most malloc/free traffic without touching the
//! arena. MineSweeper's evaluation keeps tcaches enabled, and its
//! thread-local *quarantine* buffers (contribution d) mirror this structure.
//! The simulation models one tcache per mutator thread; the cost model in
//! `ms-sim` charges less for cache hits than for arena round trips.

use vmem::Addr;

/// Per-class cached region stacks.
#[derive(Clone, Debug)]
pub(crate) struct Tcache {
    bins: Vec<Vec<Addr>>,
    caps: Vec<usize>,
}

impl Tcache {
    /// Creates a tcache for `class_sizes` (bytes per class). Capacity
    /// shrinks as classes grow, like jemalloc's `tcache_max` ladder.
    pub(crate) fn new(class_sizes: &[u64]) -> Self {
        let caps = class_sizes
            .iter()
            .map(|&s| match s {
                0..=256 => 32,
                257..=1024 => 16,
                1025..=4096 => 8,
                _ => 4,
            })
            .collect();
        Tcache { bins: vec![Vec::new(); class_sizes.len()], caps }
    }

    /// Pops a cached region of `class`, if any.
    pub(crate) fn pop(&mut self, class: usize) -> Option<Addr> {
        self.bins[class].pop()
    }

    /// Pushes a freed region. Returns `false` (leaving the region to the
    /// caller) when the bin is full and must be flushed first.
    pub(crate) fn push(&mut self, class: usize, addr: Addr) -> bool {
        if self.bins[class].len() >= self.caps[class] {
            return false;
        }
        self.bins[class].push(addr);
        true
    }

    /// Drains the oldest half of a bin for return to the arena (jemalloc's
    /// flush-half policy on overflow).
    pub(crate) fn flush_half(&mut self, class: usize) -> Vec<Addr> {
        let bin = &mut self.bins[class];
        let keep = bin.len() / 2;
        bin.drain(..bin.len() - keep).collect()
    }

    /// Drains every bin (thread teardown / explicit flush).
    pub(crate) fn flush_all(&mut self) -> Vec<(usize, Addr)> {
        let mut out = Vec::new();
        for (class, bin) in self.bins.iter_mut().enumerate() {
            out.extend(bin.drain(..).map(|a| (class, a)));
        }
        out
    }

    /// Number of cached regions of `class`.
    #[cfg(test)]
    pub(crate) fn cached(&self, class: usize) -> usize {
        self.bins[class].len()
    }

    /// Whether `addr` is parked in the bin for `class` (double-free check;
    /// bins are ≤32 entries, so the scan is cheap).
    pub(crate) fn contains(&self, class: usize, addr: Addr) -> bool {
        self.bins[class].contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc() -> Tcache {
        Tcache::new(&[16, 512, 2048, 8192])
    }

    #[test]
    fn caps_follow_class_size() {
        let t = tc();
        assert_eq!(t.caps, vec![32, 16, 8, 4]);
    }

    #[test]
    fn lifo_reuse() {
        let mut t = tc();
        assert!(t.push(0, Addr::new(16)));
        assert!(t.push(0, Addr::new(32)));
        assert_eq!(t.pop(0), Some(Addr::new(32)), "LIFO for cache warmth");
        assert_eq!(t.pop(0), Some(Addr::new(16)));
        assert_eq!(t.pop(0), None);
    }

    #[test]
    fn overflow_then_flush_half() {
        let mut t = tc();
        for i in 0..4 {
            assert!(t.push(3, Addr::new(i * 8192)));
        }
        assert!(!t.push(3, Addr::new(999 * 8192)), "full bin rejects");
        let flushed = t.flush_half(3);
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed, vec![Addr::new(0), Addr::new(8192)], "oldest first");
        assert_eq!(t.cached(3), 2);
    }

    #[test]
    fn flush_all_empties_and_tags_class() {
        let mut t = tc();
        t.push(0, Addr::new(16));
        t.push(2, Addr::new(4096));
        let mut all = t.flush_all();
        all.sort_by_key(|&(c, _)| c);
        assert_eq!(all, vec![(0, Addr::new(16)), (2, Addr::new(4096))]);
        assert_eq!(t.cached(0) + t.cached(2), 0);
    }
}
