//! Oscar: page-permission-based use-after-free protection (USENIX
//! Security 2017) — the §6.3 family's representative.
//!
//! Every allocation gets its **own virtual page(s)**; small objects are
//! co-located on shared *physical frames* through per-object virtual
//! aliases (Dhurjati & Adve's trick, plus Oscar's high-water mark so old
//! virtual ranges are never reused). Revocation on `free()` simply unmaps
//! the object's alias page: every dangling access faults. The costs are
//! Oscar's signature ones — a syscall per allocation (mapping the alias)
//! and per free (revoking it), plus ever-growing page tables — while
//! physical memory stays modest thanks to frame sharing.

use std::collections::HashMap;

use jalloc::FreeError;
use vmem::{Addr, AddrSpace, PageIdx, PageRange, Protection, PAGE_SIZE};

/// Oscar statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OscarStats {
    /// `malloc` calls.
    pub mallocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// Bytes in live allocations (16-byte rounded).
    pub live_bytes: u64,
    /// Alias mappings created (each is an `mmap`/`mremap` syscall and a
    /// page-table entry that is never reclaimed — Oscar's page-table-size
    /// cost).
    pub aliases_created: u64,
    /// Revocation syscalls (`munmap`/`mprotect`) issued.
    pub revocations: u64,
    /// Physical frames currently live.
    pub live_frames: u64,
}

/// A slot on a shared physical frame.
#[derive(Clone, Copy, Debug)]
struct AllocInfo {
    /// The alias VA page base (the address handed to the program is
    /// `alias_base + slot_offset`).
    alias: Addr,
    /// Backing frame (for small) — `None` for large (own pages).
    frame: Option<PageIdx>,
    /// Offset within the frame.
    offset: u64,
    /// Rounded size.
    size: u64,
}

/// Per-size bucket of frames with free slots.
#[derive(Debug, Default)]
struct Bucket {
    /// (frame, free slot offsets).
    frames: Vec<(PageIdx, Vec<u64>)>,
}

/// The Oscar allocator/mitigation.
///
/// # Example
///
/// ```
/// use baselines::Oscar;
/// use vmem::AddrSpace;
///
/// let mut space = AddrSpace::new();
/// let mut oscar = Oscar::new();
/// let p = oscar.malloc(&mut space, 64);
/// space.write_word(p, 7).unwrap();
/// oscar.free(&mut space, p).unwrap();
/// assert!(space.read_word(p).is_err(), "revoked page faults");
/// ```
#[derive(Debug)]
pub struct Oscar {
    buckets: HashMap<u64, Bucket>,
    /// Program address -> allocation record.
    allocs: HashMap<u64, AllocInfo>,
    /// Live objects per frame (frame page -> count), for frame reclaim.
    frame_live: HashMap<u64, u32>,
    stats: OscarStats,
}

impl Oscar {
    /// Creates an empty Oscar instance.
    pub fn new() -> Self {
        Oscar {
            buckets: HashMap::new(),
            allocs: HashMap::new(),
            frame_live: HashMap::new(),
            stats: OscarStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &OscarStats {
        &self.stats
    }

    /// Live allocation count.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }

    /// Allocates `size` bytes on a fresh virtual page (alias onto a shared
    /// frame for small objects).
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.stats.mallocs += 1;
        let rounded = size.max(1).next_multiple_of(16);
        if rounded > PAGE_SIZE as u64 / 2 {
            // Large: own fresh pages, no sharing.
            let pages = rounded.div_ceil(PAGE_SIZE as u64);
            let base = space.reserve_heap(pages);
            space.map(base, pages).expect("fresh VA");
            self.stats.aliases_created += pages;
            self.stats.live_bytes += rounded;
            self.allocs
                .insert(base.raw(), AllocInfo { alias: base, frame: None, offset: 0, size: rounded });
            return base;
        }
        // Small: take a frame slot (or open a new frame), then map a
        // fresh alias VA page over the frame.
        let bucket = self.buckets.entry(rounded).or_default();
        let (frame, offset) = loop {
            if let Some((frame, free)) = bucket.frames.last_mut() {
                if let Some(off) = free.pop() {
                    break (*frame, off);
                }
                bucket.frames.pop();
                continue;
            }
            // Open a fresh physical frame.
            let fbase = space.reserve_heap(1);
            space.map(fbase, 1).expect("fresh VA");
            let slots: Vec<u64> =
                (0..PAGE_SIZE as u64 / rounded).map(|i| i * rounded).rev().collect();
            bucket.frames.push((fbase.page(), slots));
            self.stats.live_frames += 1;
        };
        *self.frame_live.entry(frame.raw()).or_insert(0) += 1;
        let alias = space.reserve_heap(1);
        space.map_alias(alias, frame).expect("fresh alias VA over live frame");
        self.stats.aliases_created += 1;
        self.stats.live_bytes += rounded;
        let addr = alias.add_bytes(offset);
        self.allocs.insert(addr.raw(), AllocInfo { alias, frame: Some(frame), offset, size: rounded });
        addr
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.allocs.get(&addr.raw()).map(|a| a.size)
    }

    /// Frees `addr`: the alias page is unmapped (revoked — dangling
    /// accesses fault), the frame slot is recycled under a future alias,
    /// and fully-free frames release their physical page.
    ///
    /// # Errors
    ///
    /// [`FreeError::InvalidPointer`] if `addr` is not a live allocation
    /// base (covers double frees: the record is gone after the first).
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        let Some(info) = self.allocs.remove(&addr.raw()) else {
            return Err(FreeError::InvalidPointer(addr));
        };
        self.stats.frees += 1;
        self.stats.live_bytes -= info.size;
        self.stats.revocations += 1;
        match info.frame {
            None => {
                let range = PageRange::spanning(info.alias, info.size);
                space.decommit(range).expect("mapped");
                space.protect(range, Protection::None).expect("mapped");
            }
            Some(frame) => {
                // Revoke the object's own window onto the frame.
                space
                    .unmap(PageRange::new(info.alias.page(), 1))
                    .expect("alias is mapped");
                // Recycle the frame slot for a future allocation.
                self.buckets
                    .entry(info.size)
                    .or_default()
                    .frames
                    .push((frame, vec![info.offset]));
                let live = self.frame_live.get_mut(&frame.raw()).expect("counted");
                *live -= 1;
                if *live == 0 {
                    // Nothing lives here: release the physical frame (it
                    // stays mapped for future slots, demand-zero).
                    space.decommit(PageRange::new(frame, 1)).expect("mapped");
                }
            }
        }
        Ok(())
    }
}

impl Default for Oscar {
    fn default() -> Self {
        Oscar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddrSpace, Oscar) {
        (AddrSpace::new(), Oscar::new())
    }

    #[test]
    fn small_objects_share_a_physical_frame() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 64);
        let b = oscar.malloc(&mut space, 64);
        assert_ne!(a.page(), b.page(), "distinct virtual pages");
        space.write_word(a, 1).unwrap();
        space.write_word(b, 2).unwrap();
        // Both live on one frame: RSS is a single page.
        assert_eq!(space.rss_bytes(), PAGE_SIZE as u64);
        assert_eq!(oscar.stats().live_frames, 1);
    }

    #[test]
    fn revocation_faults_dangling_accesses_only() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 64);
        let b = oscar.malloc(&mut space, 64);
        space.write_word(b, 0xb).unwrap();
        oscar.free(&mut space, a).unwrap();
        assert!(space.read_word(a).is_err(), "dangling access faults");
        assert_eq!(space.read_word(b).unwrap(), 0xb, "co-located survivor fine");
    }

    #[test]
    fn virtual_addresses_never_reused() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 64);
        oscar.free(&mut space, a).unwrap();
        for _ in 0..50 {
            assert_ne!(oscar.malloc(&mut space, 64), a, "high-water mark");
        }
    }

    #[test]
    fn frame_slots_are_recycled_under_new_aliases() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 2048); // 2 per frame
        let b = oscar.malloc(&mut space, 2048);
        space.write_word(b, 5).unwrap();
        oscar.free(&mut space, a).unwrap();
        let c = oscar.malloc(&mut space, 2048);
        // c reuses a's frame slot through a fresh alias: frame count
        // unchanged.
        assert_eq!(oscar.stats().live_frames, 1);
        space.write_word(c, 6).unwrap();
        assert_eq!(space.read_word(b).unwrap(), 5);
        assert_ne!(c, a);
    }

    #[test]
    fn double_free_rejected() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 64);
        oscar.free(&mut space, a).unwrap();
        assert_eq!(oscar.free(&mut space, a), Err(FreeError::InvalidPointer(a)));
    }

    #[test]
    fn large_allocations_get_own_pages_and_fault_after_free() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 100_000);
        space.write_word(a + 8192, 3).unwrap();
        oscar.free(&mut space, a).unwrap();
        assert!(space.write_word(a + 8192, 4).is_err());
    }

    #[test]
    fn fully_freed_frame_releases_physical_memory() {
        let (mut space, mut oscar) = setup();
        let addrs: Vec<Addr> = (0..4).map(|_| oscar.malloc(&mut space, 1024)).collect();
        for &a in &addrs {
            space.write_word(a, 1).unwrap();
        }
        for &a in &addrs {
            oscar.free(&mut space, a).unwrap();
        }
        assert_eq!(space.rss_bytes(), 0, "empty frame decommitted");
    }

    #[test]
    fn stats_balance() {
        let (mut space, mut oscar) = setup();
        let a = oscar.malloc(&mut space, 60); // rounds to 64
        assert_eq!(oscar.usable_size(a), Some(64));
        assert_eq!(oscar.stats().live_bytes, 64);
        assert_eq!(oscar.stats().aliases_created, 1);
        oscar.free(&mut space, a).unwrap();
        assert_eq!(oscar.stats().live_bytes, 0);
        assert_eq!(oscar.stats().revocations, 1);
        assert_eq!(oscar.live_allocations(), 0);
    }
}
