//! DangSan: scalable use-after-free detection via per-object pointer logs
//! (EuroSys 2017) — the §6.4 family's log-structured representative.
//!
//! DangSan "notes that pointer metadata is heavily write-intensive: it is
//! written on every pointer store but only read once per object on
//! deallocation. Therefore, they structure it as a log, with some
//! de-duplication, to move work to deallocation." On `free()`, the
//! object's log is walked and every entry that still points into the
//! object is nullified; the memory is then released immediately (no
//! quarantine). Logs grow with pointer-store traffic and are only
//! reclaimed when their object dies — the source of DangSan's pathological
//! memory overheads (135× on omnetpp in the paper's Figure 10).

use std::collections::HashMap;

use jalloc::{JAlloc, JallocConfig};
use vmem::{Addr, AddrSpace};

/// Outcome of a DangSan `free()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DsFreeOutcome {
    /// Log walked, dangling entries nullified, memory released.
    Released {
        /// Log entries examined.
        log_entries: u64,
        /// Entries that still pointed into the object and were nullified.
        nullified: u64,
    },
    /// Not a live allocation base (or already freed).
    Invalid,
}

/// DangSan statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DsStats {
    /// Log appends (one per instrumented pointer store, after dedup).
    pub log_appends: u64,
    /// Appends skipped by the last-entry dedup check.
    pub dedup_hits: u64,
    /// Total pointers nullified at frees.
    pub nullified: u64,
    /// Current bytes held by pointer logs (16 B/entry).
    pub log_bytes: u64,
    /// High-water mark of `log_bytes`.
    pub peak_log_bytes: u64,
}

/// The DangSan mitigation layer.
///
/// # Example
///
/// ```
/// use baselines::{DangSan, DsFreeOutcome};
/// use vmem::{AddrSpace, Segment};
///
/// let mut space = AddrSpace::new();
/// let mut ds = DangSan::new();
/// let p = ds.malloc(&mut space, 64);
/// let slot = space.layout().segment_base(Segment::Stack);
/// space.write_word(slot, p.raw()).unwrap();
/// ds.note_ptr_store(p, slot);
/// let outcome = ds.free(&mut space, p);
/// assert!(matches!(outcome, DsFreeOutcome::Released { nullified: 1, .. }));
/// assert_eq!(space.read_word(slot).unwrap(), 0);
/// ```
#[derive(Debug)]
pub struct DangSan {
    heap: JAlloc,
    /// Per-object pointer logs: object base -> slot addresses that (at
    /// some point) held a pointer to it.
    logs: HashMap<u64, Vec<u64>>,
    stats: DsStats,
}

impl DangSan {
    /// Creates a DangSan layer over a stock heap.
    pub fn new() -> Self {
        DangSan {
            heap: JAlloc::with_config(JallocConfig::stock()),
            logs: HashMap::new(),
            stats: DsStats::default(),
        }
    }

    /// The underlying heap (read-only).
    pub fn heap(&self) -> &JAlloc {
        &self.heap
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &DsStats {
        &self.stats
    }

    /// Allocates `size` bytes.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.heap.malloc(space, size)
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.heap.usable_size(addr)
    }

    /// Records an instrumented pointer store: `slot` now holds a pointer
    /// to the object based at `target`. Appends to the target's log with
    /// DangSan's cheap last-entry de-duplication.
    pub fn note_ptr_store(&mut self, target: Addr, slot: Addr) {
        let log = self.logs.entry(target.raw()).or_default();
        if log.last() == Some(&slot.raw()) {
            self.stats.dedup_hits += 1;
            return;
        }
        log.push(slot.raw());
        self.stats.log_appends += 1;
        self.stats.log_bytes += 16;
        self.stats.peak_log_bytes = self.stats.peak_log_bytes.max(self.stats.log_bytes);
    }

    /// Intercepts `free()`: walks the object's log, nullifies entries that
    /// still point into it, releases the memory immediately, reclaims the
    /// log.
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> DsFreeOutcome {
        let Some(usable) = self.heap.usable_size(addr) else {
            return DsFreeOutcome::Invalid;
        };
        let log = self.logs.remove(&addr.raw()).unwrap_or_default();
        self.stats.log_bytes -= log.len() as u64 * 16;
        let mut nullified = 0;
        for &slot in &log {
            // The slot may itself be dead or recycled: only a value that
            // still points into [addr, addr+usable) is live-dangling.
            if let Ok(value) = space.read_word(Addr::new(slot)) {
                if value >= addr.raw() && value < addr.raw() + usable {
                    space.write_word(Addr::new(slot), 0).expect("slot readable");
                    nullified += 1;
                }
            }
        }
        self.stats.nullified += nullified;
        // A tcache-parked region still reports a usable size, so a double
        // free can reach this point: the allocator's own check rejects it.
        if self.heap.free(space, addr).is_err() {
            return DsFreeOutcome::Invalid;
        }
        DsFreeOutcome::Released { log_entries: log.len() as u64, nullified }
    }

    /// Advances virtual time (allocator decay).
    pub fn advance_clock(&mut self, now: u64) {
        self.heap.advance_clock(now);
    }

    /// Background decay purging.
    pub fn purge_aged(&mut self, space: &mut AddrSpace) {
        self.heap.purge_aged(space);
    }
}

impl Default for DangSan {
    fn default() -> Self {
        DangSan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::Segment;

    fn setup() -> (AddrSpace, DangSan, Addr) {
        let space = AddrSpace::new();
        let slot = space.layout().segment_base(Segment::Stack);
        (space, DangSan::new(), slot)
    }

    #[test]
    fn free_nullifies_logged_dangling_pointers() {
        let (mut space, mut ds, slot) = setup();
        let a = ds.malloc(&mut space, 64);
        space.write_word(slot, a.raw()).unwrap();
        ds.note_ptr_store(a, slot);
        let outcome = ds.free(&mut space, a);
        assert_eq!(outcome, DsFreeOutcome::Released { log_entries: 1, nullified: 1 });
        assert_eq!(space.read_word(slot).unwrap(), 0);
        assert_eq!(ds.heap().stats().frees, 1, "released immediately (no quarantine)");
    }

    #[test]
    fn stale_log_entries_are_skipped() {
        let (mut space, mut ds, slot) = setup();
        let a = ds.malloc(&mut space, 64);
        space.write_word(slot, a.raw()).unwrap();
        ds.note_ptr_store(a, slot);
        // The program overwrote the slot before the free: log entry stale.
        space.write_word(slot, 0x1234).unwrap();
        let outcome = ds.free(&mut space, a);
        assert_eq!(outcome, DsFreeOutcome::Released { log_entries: 1, nullified: 0 });
        assert_eq!(space.read_word(slot).unwrap(), 0x1234, "non-pointer untouched");
    }

    #[test]
    fn dedup_suppresses_repeated_stores_to_one_slot() {
        let (mut space, mut ds, slot) = setup();
        let a = ds.malloc(&mut space, 64);
        for _ in 0..10 {
            ds.note_ptr_store(a, slot);
        }
        assert_eq!(ds.stats().log_appends, 1);
        assert_eq!(ds.stats().dedup_hits, 9);
        let _ = space;
    }

    #[test]
    fn logs_grow_with_fanin_and_die_with_the_object() {
        let (mut space, mut ds, slot) = setup();
        let a = ds.malloc(&mut space, 64);
        for i in 0..100u64 {
            ds.note_ptr_store(a, slot + i * 8);
        }
        assert_eq!(ds.stats().log_bytes, 1600);
        ds.free(&mut space, a);
        assert_eq!(ds.stats().log_bytes, 0, "log reclaimed with object");
        assert_eq!(ds.stats().peak_log_bytes, 1600);
    }

    #[test]
    fn immediate_reuse_is_allowed_after_nullification() {
        // DangSan mitigates by nullification, not quarantine: memory can
        // recycle right away (its guarantee is weaker than MineSweeper's
        // against hidden copies, but the logged pointers are dead).
        let (mut space, mut ds, slot) = setup();
        let a = ds.malloc(&mut space, 64);
        space.write_word(slot, a.raw()).unwrap();
        ds.note_ptr_store(a, slot);
        ds.free(&mut space, a);
        let b = ds.malloc(&mut space, 64);
        assert_eq!(b, a, "tcache reuse immediately");
        // And the old pointer can no longer reach it.
        assert_eq!(space.read_word(slot).unwrap(), 0);
    }

    #[test]
    fn double_free_rejected() {
        let (mut space, mut ds, _slot) = setup();
        let a = ds.malloc(&mut space, 64);
        ds.free(&mut space, a);
        assert_eq!(ds.free(&mut space, a), DsFreeOutcome::Invalid);
    }
}
