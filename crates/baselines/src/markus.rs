//! MarkUs: quarantine + transitive conservative marking (S&P 2020).

use std::collections::HashSet;

use jalloc::{JAlloc, JallocConfig};
use minesweeper::ShadowMap;
use vmem::{Addr, AddrSpace, PageIdx, PageRange, Segment, WORD_SIZE};

/// MarkUs configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MarkUsConfig {
    /// Garbage-collect when quarantined bytes reach this fraction of the
    /// heap. MarkUs chose 25 %, "targeting a memory usage increase of a
    /// third" (§3.2 of the MineSweeper paper).
    pub gc_threshold: f64,
    /// Release the physical pages of page-spanning quarantined allocations
    /// (§4.2: "as in MarkUs").
    pub unmapping: bool,
    /// Aggressively clean the allocator's free structures after each
    /// collection (MarkUs's small-block sweeping analogue).
    pub purge_after_gc: bool,
}

impl MarkUsConfig {
    /// The published defaults.
    pub fn standard() -> Self {
        MarkUsConfig { gc_threshold: 0.25, unmapping: true, purge_after_gc: true }
    }
}

impl Default for MarkUsConfig {
    fn default() -> Self {
        MarkUsConfig::standard()
    }
}

/// Outcome of a MarkUs `free()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MarkUsFreeOutcome {
    /// Quarantined until proven unreachable.
    Quarantined,
    /// Already quarantined: double free absorbed.
    DoubleFree,
    /// Not a live allocation base; rejected.
    Invalid,
}

/// Report from one marking pass + quarantine walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcReport {
    /// Words examined (roots + transitively scanned objects). This is the
    /// cost driver: unlike MineSweeper's linear sweep it revisits the
    /// object graph in pointer order.
    pub scanned_words: u64,
    /// Objects marked reachable.
    pub marked_objects: u64,
    /// Quarantined allocations recycled.
    pub released: u64,
    /// Bytes recycled.
    pub released_bytes: u64,
    /// Quarantined allocations retained (reachable).
    pub retained: u64,
}

/// MarkUs statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MarkUsStats {
    /// Collections performed.
    pub collections: u64,
    /// Allocations quarantined.
    pub quarantined: u64,
    /// Allocations released.
    pub released: u64,
    /// Double frees absorbed.
    pub double_frees: u64,
    /// Invalid frees rejected.
    pub invalid_frees: u64,
    /// Total words scanned by marking over all collections.
    pub scanned_words: u64,
    /// Pages decommitted by large-allocation unmapping.
    pub unmapped_pages: u64,
}

/// A quarantined allocation awaiting a reachability verdict.
#[derive(Clone, Copy, Debug)]
struct QEntry {
    base: Addr,
    usable: u64,
    unmapped_pages: u64,
}

/// The MarkUs mitigation layer.
///
/// # Example
///
/// ```
/// use baselines::{MarkUs, MarkUsConfig};
/// use vmem::AddrSpace;
///
/// let mut space = AddrSpace::new();
/// let mut mu = MarkUs::new(MarkUsConfig::standard());
/// let p = mu.malloc(&mut space, 64);
/// mu.free(&mut space, p);
/// let report = mu.collect(&mut space);
/// assert_eq!(report.released, 1); // unreachable => recycled
/// ```
#[derive(Debug)]
pub struct MarkUs {
    cfg: MarkUsConfig,
    heap: JAlloc,
    quarantine: Vec<QEntry>,
    quarantined_bases: HashSet<u64>,
    quarantine_bytes: u64,
    retained_bytes: u64,
    stats: MarkUsStats,
}

impl MarkUs {
    /// Creates a MarkUs layer over a stock-configured heap.
    pub fn new(cfg: MarkUsConfig) -> Self {
        MarkUs {
            cfg,
            heap: JAlloc::with_config(JallocConfig::stock()),
            quarantine: Vec::new(),
            quarantined_bases: HashSet::new(),
            quarantine_bytes: 0,
            retained_bytes: 0,
            stats: MarkUsStats::default(),
        }
    }

    /// The underlying heap (read-only).
    pub fn heap(&self) -> &JAlloc {
        &self.heap
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &MarkUsStats {
        &self.stats
    }

    /// Bytes currently quarantined.
    pub fn quarantine_bytes(&self) -> u64 {
        self.quarantine_bytes
    }

    /// Number of quarantined allocations.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    /// Whether `base` is quarantined.
    pub fn is_quarantined(&self, base: Addr) -> bool {
        self.quarantined_bases.contains(&base.raw())
    }

    /// Allocates `size` bytes.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.heap.malloc(space, size)
    }

    /// Advances virtual time (allocator decay purging).
    pub fn advance_clock(&mut self, now: u64) {
        self.heap.advance_clock(now);
    }

    /// Intercepts `free()`: quarantine without zeroing (pointers inside the
    /// object survive, so marking must be transitive).
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> MarkUsFreeOutcome {
        if self.quarantined_bases.contains(&addr.raw()) {
            self.stats.double_frees += 1;
            return MarkUsFreeOutcome::DoubleFree;
        }
        let Some(usable) = self.heap.usable_size(addr) else {
            self.stats.invalid_frees += 1;
            return MarkUsFreeOutcome::Invalid;
        };
        let mut unmapped_pages = 0;
        if self.cfg.unmapping {
            let interior = PageRange::interior(addr, usable);
            if !interior.is_empty() {
                // Physically release; contents (including any pointers the
                // object held) are destroyed, exactly like MarkUs's page
                // freeing.
                space.decommit(interior).expect("live allocation is mapped");
                unmapped_pages = interior.page_count();
                self.stats.unmapped_pages += unmapped_pages;
            }
        }
        self.quarantined_bases.insert(addr.raw());
        self.quarantine_bytes += usable;
        self.quarantine.push(QEntry { base: addr, usable, unmapped_pages });
        self.stats.quarantined += 1;
        MarkUsFreeOutcome::Quarantined
    }

    /// Whether the collection trigger has fired: "when the programmer's
    /// quarantined frees take up 25 % of the total heap".
    ///
    /// Entries retained by the previous collection (still reachable) are
    /// discounted — like MineSweeper's failed frees (§3.2), counting them
    /// would re-trigger a collection after every subsequent `free()`.
    pub fn gc_needed(&self) -> bool {
        const MIN_GC_BYTES: u64 = 64 * 1024;
        let fresh = self.quarantine_bytes.saturating_sub(self.retained_bytes);
        fresh >= MIN_GC_BYTES
            && fresh as f64
                >= self.cfg.gc_threshold
                    * self.heap.stats().allocated_bytes.saturating_sub(self.retained_bytes)
                        as f64
    }

    /// Runs a full marking pass and quarantine walk.
    ///
    /// Marking is Boehm-style conservative reachability: every committed
    /// root word is a candidate pointer; every object it hits is scanned
    /// transitively. A quarantined object is released only if unreachable.
    pub fn collect(&mut self, space: &mut AddrSpace) -> GcReport {
        let mut report = GcReport::default();
        let layout = *space.layout();
        // The marked-object set is a shadow map over allocation bases: the
        // minimum size class is one 16-byte granule, so distinct bases
        // always occupy distinct granule bits, and `mark`'s newly-set
        // return drives worklist insertion exactly like `HashSet::insert`.
        let marked = ShadowMap::new();
        let mut worklist: Vec<(Addr, u64)> = Vec::new();

        // Root scan: committed pages of globals and stack (page slices).
        for seg in [Segment::Globals, Segment::Stack] {
            let base = layout.segment_base(seg);
            let first = base.page();
            for i in 0..layout.segment_pages(seg) {
                let page = PageIdx::new(first.raw() + i);
                let Ok(Some(words)) = space.scan_page(page) else { continue };
                report.scanned_words += words.len() as u64;
                for &value in words.iter() {
                    self.visit(value, &layout, &marked, &mut worklist);
                }
            }
        }

        // Transitive closure over the object graph, page chunk by chunk.
        // Unbacked (unmapped-quarantined) ranges read as zero: their
        // pointers were physically destroyed with the pages.
        while let Some((base, usable)) = worklist.pop() {
            report.scanned_words += usable / WORD_SIZE as u64;
            let mut off = 0;
            while off < usable {
                let addr = base.add_bytes(off);
                let page_end =
                    addr.page().next().base().offset_from(base).min(usable);
                if let Ok(Some(words)) = space.scan_page(addr.page()) {
                    let w0 = addr.word_in_page();
                    let w1 = w0 + ((page_end - off) / WORD_SIZE as u64) as usize;
                    // `visit` needs `&self` only; the worklist and marked
                    // set are locals, so the page borrow is undisturbed.
                    for &value in &words[w0..w1] {
                        self.visit(value, &layout, &marked, &mut worklist);
                    }
                }
                off = page_end;
            }
        }
        report.marked_objects = marked.marked_count();

        // Quarantine walk: release unmarked entries.
        let entries = std::mem::take(&mut self.quarantine);
        self.retained_bytes = 0;
        for entry in entries {
            if marked.is_marked(entry.base) {
                report.retained += 1;
                self.retained_bytes += entry.usable;
                self.quarantine.push(entry);
            } else {
                if entry.unmapped_pages > 0 {
                    // Pages were already decommitted; nothing to restore
                    // (no protection was applied).
                }
                self.heap.free(space, entry.base).expect("quarantine owns this");
                self.quarantined_bases.remove(&entry.base.raw());
                self.quarantine_bytes -= entry.usable;
                report.released += 1;
                report.released_bytes += entry.usable;
                self.stats.released += 1;
            }
        }

        if self.cfg.purge_after_gc {
            self.heap.purge_all(space);
        }
        self.stats.collections += 1;
        self.stats.scanned_words += report.scanned_words;
        report
    }

    /// Conservative pointer test + mark + enqueue.
    fn visit(
        &self,
        value: u64,
        layout: &vmem::Layout,
        marked: &ShadowMap,
        worklist: &mut Vec<(Addr, u64)>,
    ) {
        if !layout.heap_contains(Addr::new(value)) {
            return;
        }
        let Some((base, usable)) = self.heap.allocation_range(Addr::new(value)) else {
            return;
        };
        if marked.mark(base) {
            worklist.push((base, usable));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::PAGE_SIZE;

    fn setup() -> (AddrSpace, MarkUs) {
        (AddrSpace::new(), MarkUs::new(MarkUsConfig::standard()))
    }

    fn stack_slot(space: &AddrSpace, i: u64) -> Addr {
        space.layout().segment_base(Segment::Stack) + i * 8
    }

    #[test]
    fn unreachable_quarantined_object_is_released() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        mu.free(&mut space, a);
        let report = mu.collect(&mut space);
        assert_eq!((report.released, report.retained), (1, 0));
    }

    #[test]
    fn rooted_dangling_pointer_retains_object() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        let slot = stack_slot(&space, 0);
        space.write_word(slot, a.raw()).unwrap();
        mu.free(&mut space, a);
        let report = mu.collect(&mut space);
        assert_eq!((report.released, report.retained), (0, 1));
        assert!(mu.is_quarantined(a));
        // Erase the root: next collection releases it.
        space.write_word(slot, 0).unwrap();
        assert_eq!(mu.collect(&mut space).released, 1);
    }

    #[test]
    fn transitive_reachability_through_live_objects() {
        // root -> live A -> quarantined B: B must be retained even though
        // no root points at it directly.
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        let b = mu.malloc(&mut space, 64);
        space.write_word(stack_slot(&space, 0), a.raw()).unwrap();
        space.write_word(a, b.raw()).unwrap();
        mu.free(&mut space, b);
        let report = mu.collect(&mut space);
        assert_eq!(report.retained, 1, "B reachable via A");
    }

    #[test]
    fn transitive_reachability_through_quarantined_objects() {
        // root -> quarantined A -> quarantined B: MarkUs does NOT zero, so
        // A's pointer to B survives and pins B too. (MineSweeper's zeroing
        // would release B.)
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        let b = mu.malloc(&mut space, 64);
        space.write_word(a, b.raw()).unwrap();
        space.write_word(stack_slot(&space, 0), a.raw()).unwrap();
        mu.free(&mut space, a);
        mu.free(&mut space, b);
        let report = mu.collect(&mut space);
        assert_eq!((report.released, report.retained), (0, 2));
    }

    #[test]
    fn unreachable_cycles_are_collected() {
        // Unlike a non-transitive no-zeroing scheme, a GC handles cycles:
        // unreachable quarantined A <-> B are both released.
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        let b = mu.malloc(&mut space, 64);
        space.write_word(a, b.raw()).unwrap();
        space.write_word(b, a.raw()).unwrap();
        mu.free(&mut space, a);
        mu.free(&mut space, b);
        let report = mu.collect(&mut space);
        assert_eq!((report.released, report.retained), (2, 0));
    }

    #[test]
    fn double_free_absorbed() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        assert_eq!(mu.free(&mut space, a), MarkUsFreeOutcome::Quarantined);
        assert_eq!(mu.free(&mut space, a), MarkUsFreeOutcome::DoubleFree);
        mu.collect(&mut space);
        assert_eq!(mu.heap().stats().frees, 1);
    }

    #[test]
    fn invalid_free_rejected() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 64);
        assert_eq!(mu.free(&mut space, a + 8), MarkUsFreeOutcome::Invalid);
        assert_eq!(mu.stats().invalid_frees, 1);
    }

    #[test]
    fn gc_trigger_at_quarter_heap() {
        let (mut space, mut mu) = setup();
        let addrs: Vec<Addr> = (0..512).map(|_| mu.malloc(&mut space, 4096)).collect();
        assert!(!mu.gc_needed());
        for &a in addrs.iter().take(100) {
            mu.free(&mut space, a);
        }
        assert!(!mu.gc_needed(), "19.5% < 25%");
        for &a in addrs.iter().skip(100).take(30) {
            mu.free(&mut space, a);
        }
        assert!(mu.gc_needed(), "25.4% >= 25%");
    }

    #[test]
    fn large_quarantined_allocations_release_physical_pages() {
        let (mut space, mut mu) = setup();
        let size = 32 * PAGE_SIZE as u64;
        let a = mu.malloc(&mut space, size);
        for p in 0..32u64 {
            space.write_word(a + p * PAGE_SIZE as u64, 1).unwrap();
        }
        let before = space.rss_bytes();
        mu.free(&mut space, a);
        assert!(space.rss_bytes() + 31 * PAGE_SIZE as u64 <= before);
    }

    #[test]
    fn unmapped_quarantined_pages_lose_their_pointers() {
        // A dangling pointer stored *inside* a large quarantined object is
        // physically destroyed by page release; it cannot pin anything.
        let (mut space, mut mu) = setup();
        let victim = mu.malloc(&mut space, 64);
        let big = mu.malloc(&mut space, 32 * PAGE_SIZE as u64);
        space.write_word(big + PAGE_SIZE as u64, victim.raw()).unwrap();
        space.write_word(stack_slot(&space, 0), big.raw()).unwrap(); // big reachable
        mu.free(&mut space, big);
        mu.free(&mut space, victim);
        let report = mu.collect(&mut space);
        // big retained (rooted), victim released (its only pointer died
        // with big's pages).
        assert_eq!((report.retained, report.released), (1, 1));
    }

    #[test]
    fn interior_pointers_retain_objects() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 256);
        space.write_word(stack_slot(&space, 0), a.raw() + 128).unwrap();
        mu.free(&mut space, a);
        assert_eq!(mu.collect(&mut space).retained, 1);
    }

    #[test]
    fn quarantine_bytes_balance() {
        let (mut space, mut mu) = setup();
        let a = mu.malloc(&mut space, 100); // class 112
        let b = mu.malloc(&mut space, 100);
        mu.free(&mut space, a);
        mu.free(&mut space, b);
        assert_eq!(mu.quarantine_bytes(), 224);
        mu.collect(&mut space);
        assert_eq!(mu.quarantine_bytes(), 0);
        assert_eq!(mu.quarantine_len(), 0);
    }
}
