#![warn(missing_docs)]

//! Baseline use-after-free mitigations the MineSweeper paper compares
//! against, implemented over the same substrate for apples-to-apples
//! evaluation (§5.1 reruns both on the authors' machine):
//!
//! * [`MarkUs`] — Ainsworth & Jones, *MarkUs: Drop-in use-after-free
//!   prevention for low-level languages* (S&P 2020). Quarantine at 25 % of
//!   the heap, released by a Boehm-style **transitive conservative marking**
//!   pass from the roots: a quarantined allocation is recycled only when it
//!   is unreachable. No zeroing — pointers inside quarantined objects keep
//!   their referents pinned, and reachability must chase the whole object
//!   graph (the work MineSweeper's zeroing + linear sweep eliminates,
//!   Figure 6).
//!
//! * [`FfMalloc`] — Wickman et al., *Preventing Use-After-Free Attacks with
//!   Fast Forward Allocation* (USENIX Security 2021). A **one-time
//!   allocator**: virtual addresses are handed out in strictly increasing
//!   order and never reused, so a dangling pointer can never alias a new
//!   allocation; physical pages are released once every allocation on them
//!   is freed. Fast, but fragmentation-prone: one long-lived allocation
//!   pins a page forever (the §5.2 sphinx3/perlbench pathology).
//!
//! * [`CrCount`] — Shin et al., *CRCount: Pointer Invalidation with
//!   Reference Counting* (NDSS 2019): the §6.4 pointer-nullification
//!   family's refcounting representative, implemented for real (the paper
//!   itself only reprints its published numbers). Every pointer store is
//!   instrumented; frees defer until the count drains; zero-filling on
//!   free removes outgoing references — "overheads on even
//!   non-allocation-intensive workloads" (§6.6).
//!
//! * [`Oscar`] — Dang et al. (USENIX Security 2017): page-permission
//!   revocation with per-object shadow virtual pages aliased onto shared
//!   physical frames (§6.3), built on [`vmem`]'s page aliasing.
//!
//! * [`PSweeper`] — Liu et al. (CCS 2018): a live pointer table swept by a
//!   background thread that actively **nullifies** dangling pointers;
//!   deallocation waits for one full sweep (§6.4).
//!
//! * [`DangSan`] — van der Kouwe et al. (EuroSys 2017): per-object
//!   append-only pointer logs, walked and nullified at `free()` (§6.4).
//!
//! The MineSweeper paper reprints these four schemes' published numbers
//! (Figures 7 & 10, [`literature`]); this crate *implements* them so
//! their published characters can be checked against the same substrate.

mod crcount;
mod dangsan;
mod ffmalloc;
pub mod literature;
mod markus;
mod oscar;
mod psweeper;

pub use crcount::{CrCount, CrFreeOutcome, CrStats};
pub use dangsan::{DangSan, DsFreeOutcome, DsStats};
pub use ffmalloc::{FfConfig, FfFreeReport, FfMalloc, FfStats};
pub use oscar::{Oscar, OscarStats};
pub use psweeper::{PSweeper, PsFreeOutcome, PsStats, PsSweepReport};
pub use markus::{GcReport, MarkUs, MarkUsConfig, MarkUsFreeOutcome, MarkUsStats};
