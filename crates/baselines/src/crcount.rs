//! CRCount: pointer invalidation with reference counting (NDSS 2019) —
//! the §6.4/§6.6 comparison family's refcounting representative.
//!
//! CRCount instruments every pointer store (via compiler support and a
//! pointer bitmap) to keep a per-object reference count. An object is
//! recycled only when the programmer has freed it **and** its count is
//! zero; like MineSweeper it zero-fills freed allocations, which drops
//! their outgoing references. The cost profile is the mirror image of
//! MineSweeper's: no sweeps at all, but work on *every pointer write* —
//! "overheads on even non-allocation-intensive workloads (e.g., mcf,
//! povray)" (§6.6).
//!
//! The simulation engine drives the reference-count updates (it owns the
//! pointer graph, standing in for the compiler's instrumented stores) via
//! [`CrCount::inc_ref`]/[`CrCount::dec_ref`].

use std::collections::HashMap;

use jalloc::{JAlloc, JallocConfig};
use vmem::{Addr, AddrSpace, WORD_SIZE};

/// Outcome of a CRCount `free()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrFreeOutcome {
    /// Reference count was zero: released to the allocator immediately.
    Released,
    /// References remain: invalidated (zeroed) and parked until the count
    /// drains to zero.
    Deferred,
    /// Not a live allocation base (or already freed).
    Invalid,
}

/// CRCount statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CrStats {
    /// Instrumented pointer stores processed (each pays runtime cost).
    pub ptr_writes: u64,
    /// Programmer frees released immediately (count already zero).
    pub immediate_frees: u64,
    /// Programmer frees deferred on a non-zero count.
    pub deferred_frees: u64,
    /// Deferred frees later released when their count drained.
    pub drained_frees: u64,
    /// Bytes zero-filled on free.
    pub zeroed_bytes: u64,
}

/// The CRCount mitigation layer.
///
/// # Example
///
/// ```
/// use baselines::{CrCount, CrFreeOutcome};
/// use vmem::AddrSpace;
///
/// let mut space = AddrSpace::new();
/// let mut cr = CrCount::new();
/// let p = cr.malloc(&mut space, 64);
/// cr.inc_ref(p); // a pointer to p was stored somewhere
/// assert_eq!(cr.free(&mut space, p), CrFreeOutcome::Deferred);
/// cr.dec_ref(&mut space, p); // the pointer was overwritten
/// assert_eq!(cr.pending(), 0); // drained => released
/// ```
#[derive(Debug)]
pub struct CrCount {
    heap: JAlloc,
    /// base -> outstanding reference count (absent = 0).
    counts: HashMap<u64, u64>,
    /// base -> usable size, for frees deferred on a non-zero count.
    pending: HashMap<u64, u64>,
    stats: CrStats,
}

impl CrCount {
    /// Creates a CRCount layer over a stock heap.
    pub fn new() -> Self {
        CrCount {
            heap: JAlloc::with_config(JallocConfig::stock()),
            counts: HashMap::new(),
            pending: HashMap::new(),
            stats: CrStats::default(),
        }
    }

    /// The underlying heap (read-only).
    pub fn heap(&self) -> &JAlloc {
        &self.heap
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &CrStats {
        &self.stats
    }

    /// Deferred frees currently parked on non-zero counts.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Bytes parked on non-zero counts.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.values().sum()
    }

    /// Allocates `size` bytes.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.heap.malloc(space, size)
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.heap.usable_size(addr)
    }

    /// Records an instrumented pointer store creating a reference to the
    /// allocation based at `base`.
    pub fn inc_ref(&mut self, base: Addr) {
        self.stats.ptr_writes += 1;
        *self.counts.entry(base.raw()).or_insert(0) += 1;
    }

    /// Records an instrumented overwrite/destruction of a reference to
    /// `base`. If `base` was freed by the programmer and this was its last
    /// reference, the memory is released to the allocator now.
    pub fn dec_ref(&mut self, space: &mut AddrSpace, base: Addr) {
        self.stats.ptr_writes += 1;
        let Some(count) = self.counts.get_mut(&base.raw()) else { return };
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.counts.remove(&base.raw());
            if self.pending.remove(&base.raw()).is_some() {
                self.heap.free(space, base).expect("pending free owns the base");
                self.stats.drained_frees += 1;
            }
        }
    }

    /// Intercepts `free()`: zero-fills (removing the object's outgoing
    /// references — the engine mirrors that by dec-ing them), then either
    /// releases immediately (count zero) or defers.
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> CrFreeOutcome {
        if self.pending.contains_key(&addr.raw()) {
            return CrFreeOutcome::Invalid; // double free absorbed
        }
        let Some(usable) = self.heap.usable_size(addr) else {
            return CrFreeOutcome::Invalid;
        };
        let zero_len = usable / WORD_SIZE as u64 * WORD_SIZE as u64;
        space.fill_zero(addr, zero_len).expect("live allocation");
        self.stats.zeroed_bytes += zero_len;
        if self.counts.get(&addr.raw()).copied().unwrap_or(0) == 0 {
            self.heap.free(space, addr).expect("live allocation");
            self.stats.immediate_frees += 1;
            CrFreeOutcome::Released
        } else {
            self.pending.insert(addr.raw(), usable);
            self.stats.deferred_frees += 1;
            CrFreeOutcome::Deferred
        }
    }

    /// Advances virtual time (allocator decay).
    pub fn advance_clock(&mut self, now: u64) {
        self.heap.advance_clock(now);
    }

    /// Background decay purging.
    pub fn purge_aged(&mut self, space: &mut AddrSpace) {
        self.heap.purge_aged(space);
    }
}

impl Default for CrCount {
    fn default() -> Self {
        CrCount::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddrSpace, CrCount) {
        (AddrSpace::new(), CrCount::new())
    }

    #[test]
    fn unreferenced_free_releases_immediately() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        assert_eq!(cr.free(&mut space, a), CrFreeOutcome::Released);
        assert_eq!(cr.heap().stats().frees, 1);
        assert_eq!(cr.stats().immediate_frees, 1);
    }

    #[test]
    fn referenced_free_defers_until_count_drains() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        cr.inc_ref(a);
        cr.inc_ref(a);
        assert_eq!(cr.free(&mut space, a), CrFreeOutcome::Deferred);
        assert_eq!(cr.heap().stats().frees, 0, "not yet released");
        assert_eq!(cr.pending(), 1);
        cr.dec_ref(&mut space, a);
        assert_eq!(cr.pending(), 1, "one reference left");
        cr.dec_ref(&mut space, a);
        assert_eq!(cr.pending(), 0, "drained");
        assert_eq!(cr.heap().stats().frees, 1);
        assert_eq!(cr.stats().drained_frees, 1);
    }

    #[test]
    fn no_reallocation_while_references_remain() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        cr.inc_ref(a);
        cr.free(&mut space, a);
        for _ in 0..100 {
            assert_ne!(cr.malloc(&mut space, 64), a, "deferred free must not recycle");
        }
    }

    #[test]
    fn free_zero_fills() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        space.write_word(a, 0xdead).unwrap();
        cr.inc_ref(a);
        cr.free(&mut space, a);
        assert_eq!(space.read_word(a).unwrap(), 0, "invalidated contents are zero");
    }

    #[test]
    fn double_free_is_absorbed() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        cr.inc_ref(a);
        assert_eq!(cr.free(&mut space, a), CrFreeOutcome::Deferred);
        assert_eq!(cr.free(&mut space, a), CrFreeOutcome::Invalid);
        cr.dec_ref(&mut space, a);
        assert_eq!(cr.heap().stats().frees, 1, "exactly one true free");
    }

    #[test]
    fn invalid_free_rejected() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        assert_eq!(cr.free(&mut space, a + 8), CrFreeOutcome::Invalid);
    }

    #[test]
    fn dec_without_pending_is_harmless() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        cr.inc_ref(a);
        cr.dec_ref(&mut space, a);
        cr.dec_ref(&mut space, a); // extra dec: saturates, no underflow
        assert_eq!(cr.pending(), 0);
        // Object is still live and freeable.
        assert_eq!(cr.free(&mut space, a), CrFreeOutcome::Released);
    }

    #[test]
    fn ptr_write_accounting() {
        let (mut space, mut cr) = setup();
        let a = cr.malloc(&mut space, 64);
        cr.inc_ref(a);
        cr.dec_ref(&mut space, a);
        assert_eq!(cr.stats().ptr_writes, 2, "every instrumented store counts");
    }
}
