//! pSweeper: concurrent pointer sweeping with nullification (CCS 2018) —
//! the §6.4 family's active-revocation representative.
//!
//! pSweeper "offloads pointer nullification to a background thread. This
//! thread repeatedly ... sweeps live pointers for dangling ones.
//! Deallocation is delayed until a full sweep is performed after the call
//! to free(). pSweeper keeps a live pointer table, so that the sweep can
//! locate live pointers, and to make nullification safe."
//!
//! The simulation engine registers/unregisters pointer locations (standing
//! in for the compiler instrumentation that maintains the live pointer
//! table) and drives [`PSweeper::sweep`] on its periodic clock.

use std::collections::{BTreeMap, HashSet};

use jalloc::{JAlloc, JallocConfig};
use vmem::{Addr, AddrSpace};

/// Outcome of a pSweeper `free()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PsFreeOutcome {
    /// Parked until the next full sweep completes.
    Deferred,
    /// Not a live allocation base (or already freed).
    Invalid,
}

/// Report from one full pointer sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PsSweepReport {
    /// Live pointer slots examined.
    pub slots_scanned: u64,
    /// Dangling pointers nullified.
    pub nullified: u64,
    /// Deferred frees released after this sweep.
    pub released: u64,
    /// Bytes released.
    pub released_bytes: u64,
}

/// pSweeper statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PsStats {
    /// Pointer registrations (per instrumented store).
    pub registrations: u64,
    /// Full sweeps performed.
    pub sweeps: u64,
    /// Total slots scanned over all sweeps.
    pub slots_scanned: u64,
    /// Total pointers nullified.
    pub nullified: u64,
    /// Frees deferred then released.
    pub released: u64,
}

/// The pSweeper mitigation layer.
///
/// # Example
///
/// ```
/// use baselines::{PSweeper, PsFreeOutcome};
/// use vmem::{AddrSpace, Segment};
///
/// let mut space = AddrSpace::new();
/// let mut ps = PSweeper::new();
/// let p = ps.malloc(&mut space, 64);
/// let slot = space.layout().segment_base(Segment::Stack);
/// space.write_word(slot, p.raw()).unwrap();
/// ps.register_ptr(slot);
/// assert_eq!(ps.free(&mut space, p), PsFreeOutcome::Deferred);
/// let report = ps.sweep(&mut space);
/// assert_eq!(report.nullified, 1); // dangling pointer actively NULLed
/// assert_eq!(space.read_word(slot).unwrap(), 0);
/// ```
#[derive(Debug)]
pub struct PSweeper {
    heap: JAlloc,
    /// The live pointer table: addresses of pointer-typed slots.
    ptr_slots: HashSet<u64>,
    /// Frees awaiting the next full sweep: base -> usable.
    pending: BTreeMap<u64, u64>,
    stats: PsStats,
}

impl PSweeper {
    /// Creates a pSweeper layer over a stock heap.
    pub fn new() -> Self {
        PSweeper {
            heap: JAlloc::with_config(JallocConfig::stock()),
            ptr_slots: HashSet::new(),
            pending: BTreeMap::new(),
            stats: PsStats::default(),
        }
    }

    /// The underlying heap (read-only).
    pub fn heap(&self) -> &JAlloc {
        &self.heap
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &PsStats {
        &self.stats
    }

    /// Live pointer-table size.
    pub fn tracked_ptrs(&self) -> usize {
        self.ptr_slots.len()
    }

    /// Frees parked until the next sweep.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Bytes parked until the next sweep.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.values().sum()
    }

    /// Allocates `size` bytes.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.heap.malloc(space, size)
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.heap.usable_size(addr)
    }

    /// Registers a pointer-typed slot in the live pointer table (an
    /// instrumented store created or moved a pointer here).
    pub fn register_ptr(&mut self, slot: Addr) {
        self.stats.registrations += 1;
        self.ptr_slots.insert(slot.raw());
    }

    /// Removes a slot from the table (its holder died or the slot was
    /// overwritten with non-pointer data).
    pub fn unregister_ptr(&mut self, slot: Addr) {
        self.ptr_slots.remove(&slot.raw());
    }

    /// Intercepts `free()`: deallocation is deferred until the next full
    /// sweep, which will nullify any dangling pointers first.
    pub fn free(&mut self, _space: &mut AddrSpace, addr: Addr) -> PsFreeOutcome {
        if self.pending.contains_key(&addr.raw()) {
            return PsFreeOutcome::Invalid; // double free absorbed
        }
        let Some(usable) = self.heap.usable_size(addr) else {
            return PsFreeOutcome::Invalid;
        };
        self.pending.insert(addr.raw(), usable);
        PsFreeOutcome::Deferred
    }

    /// One full pass over the live pointer table: every pointer into a
    /// pending-freed allocation is overwritten with NULL, then the pending
    /// frees are released. Runs on pSweeper's background thread in the
    /// real system; the engine charges it accordingly.
    pub fn sweep(&mut self, space: &mut AddrSpace) -> PsSweepReport {
        let mut report = PsSweepReport::default();
        let pending = std::mem::take(&mut self.pending);
        for &slot in &self.ptr_slots {
            report.slots_scanned += 1;
            let Ok(value) = space.read_word(Addr::new(slot)) else { continue };
            // Dangling iff it points into a pending-freed allocation.
            let hit = pending
                .range(..=value)
                .next_back()
                .is_some_and(|(&base, &usable)| value < base + usable);
            if hit {
                space.write_word(Addr::new(slot), 0).expect("slot was readable");
                report.nullified += 1;
            }
        }
        for (&base, &usable) in &pending {
            self.heap.free(space, Addr::new(base)).expect("pending free owns base");
            report.released += 1;
            report.released_bytes += usable;
        }
        self.stats.sweeps += 1;
        self.stats.slots_scanned += report.slots_scanned;
        self.stats.nullified += report.nullified;
        self.stats.released += report.released;
        report
    }

    /// Advances virtual time (allocator decay).
    pub fn advance_clock(&mut self, now: u64) {
        self.heap.advance_clock(now);
    }

    /// Background decay purging.
    pub fn purge_aged(&mut self, space: &mut AddrSpace) {
        self.heap.purge_aged(space);
    }
}

impl Default for PSweeper {
    fn default() -> Self {
        PSweeper::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::Segment;

    fn setup() -> (AddrSpace, PSweeper, Addr) {
        let space = AddrSpace::new();
        let slot = space.layout().segment_base(Segment::Stack);
        (space, PSweeper::new(), slot)
    }

    #[test]
    fn dangling_pointer_is_nullified_then_memory_released() {
        let (mut space, mut ps, slot) = setup();
        let a = ps.malloc(&mut space, 64);
        space.write_word(slot, a.raw()).unwrap();
        ps.register_ptr(slot);
        ps.free(&mut space, a);
        let report = ps.sweep(&mut space);
        assert_eq!(report.nullified, 1);
        assert_eq!(report.released, 1);
        assert_eq!(space.read_word(slot).unwrap(), 0, "pointer actively NULLed");
        assert_eq!(ps.heap().stats().frees, 1);
    }

    #[test]
    fn interior_dangling_pointers_are_nullified() {
        let (mut space, mut ps, slot) = setup();
        let a = ps.malloc(&mut space, 256);
        space.write_word(slot, a.raw() + 128).unwrap();
        ps.register_ptr(slot);
        ps.free(&mut space, a);
        assert_eq!(ps.sweep(&mut space).nullified, 1);
    }

    #[test]
    fn live_pointers_are_untouched() {
        let (mut space, mut ps, slot) = setup();
        let a = ps.malloc(&mut space, 64);
        let b = ps.malloc(&mut space, 64);
        space.write_word(slot, b.raw()).unwrap();
        ps.register_ptr(slot);
        ps.free(&mut space, a);
        let report = ps.sweep(&mut space);
        assert_eq!(report.nullified, 0);
        assert_eq!(space.read_word(slot).unwrap(), b.raw(), "live pointer intact");
    }

    #[test]
    fn no_reallocation_before_the_sweep() {
        let (mut space, mut ps, _slot) = setup();
        let a = ps.malloc(&mut space, 64);
        ps.free(&mut space, a);
        for _ in 0..50 {
            assert_ne!(ps.malloc(&mut space, 64), a, "deferred until sweep");
        }
        ps.sweep(&mut space);
        // After the sweep the memory may recycle.
        let reused = (0..200).any(|_| ps.malloc(&mut space, 64) == a);
        assert!(reused, "released memory becomes reusable");
    }

    #[test]
    fn double_free_absorbed_and_unregister_works() {
        let (mut space, mut ps, slot) = setup();
        let a = ps.malloc(&mut space, 64);
        space.write_word(slot, a.raw()).unwrap();
        ps.register_ptr(slot);
        ps.unregister_ptr(slot);
        assert_eq!(ps.free(&mut space, a), PsFreeOutcome::Deferred);
        assert_eq!(ps.free(&mut space, a), PsFreeOutcome::Invalid);
        let report = ps.sweep(&mut space);
        assert_eq!(report.slots_scanned, 0, "unregistered slot not swept");
        assert_eq!(ps.heap().stats().frees, 1);
    }

    #[test]
    fn frees_during_one_sweep_wait_for_the_next() {
        let (mut space, mut ps, _slot) = setup();
        let a = ps.malloc(&mut space, 64);
        ps.free(&mut space, a);
        ps.sweep(&mut space); // releases a
        let b = ps.malloc(&mut space, 64);
        ps.free(&mut space, b);
        assert_eq!(ps.pending(), 1, "b waits for the next sweep");
        assert_eq!(ps.sweep(&mut space).released, 1);
        assert_eq!(ps.pending(), 0);
    }
}
