//! FFmalloc: the one-time allocator (USENIX Security 2021).
//!
//! "The allocator never reuses the same virtual-memory range; virtual
//! memory is always mapped in increasing order of addresses. Once all
//! allocations from a page are free()-d, the physical page is unmapped"
//! (§5.2 of the MineSweeper paper). Temporal safety is absolute — a
//! dangling pointer can never alias a new allocation — but fragmentation
//! is unbounded: a single long-lived allocation pins its page(s) forever,
//! which is the mechanism behind the paper's 244 % average / 1,070 %
//! worst-case memory overheads on SPEC CPU2006.

use std::collections::HashMap;

use jalloc::FreeError;
use vmem::{Addr, AddrSpace, PageIdx, PageRange, Protection, PAGE_SIZE};

/// FFmalloc configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FfConfig {
    /// Requests above this go straight to fresh page-granular mappings.
    pub large_threshold: u64,
    /// Pages mapped per small-allocation chunk (FFmalloc maps pools in
    /// batches to amortise syscalls).
    pub chunk_pages: u64,
}

impl FfConfig {
    /// The published defaults (4 KiB-page pools, 2 MiB chunks, large at
    /// 16 KiB).
    pub fn standard() -> Self {
        FfConfig { large_threshold: 16 * 1024, chunk_pages: 512 }
    }
}

impl Default for FfConfig {
    fn default() -> Self {
        FfConfig::standard()
    }
}

/// Per-free report (drives the cost model).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FfFreeReport {
    /// Physical pages released by this free.
    pub pages_released: u64,
}

/// FFmalloc statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FfStats {
    /// `malloc` calls.
    pub mallocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// Bytes in live allocations (aligned sizes).
    pub live_bytes: u64,
    /// Total virtual bytes ever handed out (monotone).
    pub va_consumed: u64,
    /// Physical pages released so far.
    pub pages_released: u64,
    /// Pages still pinned by at least one live allocation.
    pub pinned_pages: u64,
}

/// The one-time allocator.
///
/// # Example
///
/// ```
/// use baselines::FfMalloc;
/// use vmem::AddrSpace;
///
/// let mut space = AddrSpace::new();
/// let mut ff = FfMalloc::new(Default::default());
/// let a = ff.malloc(&mut space, 64);
/// ff.free(&mut space, a).unwrap();
/// let b = ff.malloc(&mut space, 64);
/// assert_ne!(a, b, "virtual addresses are never reused");
/// ```
#[derive(Debug)]
pub struct FfMalloc {
    cfg: FfConfig,
    /// Small-allocation bump cursor and current chunk end.
    cursor: Addr,
    chunk_end: Addr,
    /// Live allocations: base -> aligned size.
    allocs: HashMap<u64, u64>,
    /// Live allocation count per page (plus the bump-cursor hold).
    page_live: HashMap<u64, u32>,
    /// Page currently held open for the bump cursor, if any.
    cursor_hold: Option<u64>,
    stats: FfStats,
}

impl FfMalloc {
    /// Creates an empty one-time allocator.
    pub fn new(cfg: FfConfig) -> Self {
        FfMalloc {
            cfg,
            cursor: Addr::NULL,
            chunk_end: Addr::NULL,
            allocs: HashMap::new(),
            page_live: HashMap::new(),
            cursor_hold: None,
            stats: FfStats::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &FfStats {
        &self.stats
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.allocs.get(&addr.raw()).copied()
    }

    /// The live allocation containing `addr` (base, usable size). Linear in
    /// the worst case is avoided by checking the two enclosing page spans.
    pub fn allocation_range(&self, addr: Addr) -> Option<(Addr, u64)> {
        // Small allocations never span a chunk; scan backwards within one
        // chunk worth of candidate bases. Cheap approach: consult the
        // sorted view lazily (allocation lookup is test/sweep-side only for
        // FFmalloc, never on the hot path).
        self.allocs
            .iter()
            .find(|(&b, &l)| addr.raw() >= b && addr.raw() < b + l)
            .map(|(&b, &l)| (Addr::new(b), l))
    }

    /// Allocates `size` bytes at a never-before-used virtual address.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.stats.mallocs += 1;
        let aligned = size.max(1).next_multiple_of(16);
        let small = aligned <= self.cfg.large_threshold;
        let base = if !small {
            let pages = aligned.div_ceil(PAGE_SIZE as u64);
            let base = space.reserve_heap(pages);
            space.map(base, pages).expect("fresh VA");
            base
        } else {
            if self.cursor.is_null() || self.cursor.add_bytes(aligned) > self.chunk_end {
                // Abandon the old chunk (its tail is wasted) and open a
                // fresh one.
                self.move_cursor_hold(space, None);
                let base = space.reserve_heap(self.cfg.chunk_pages);
                space.map(base, self.cfg.chunk_pages).expect("fresh VA");
                self.cursor = base;
                self.chunk_end = base.add_bytes(self.cfg.chunk_pages * PAGE_SIZE as u64);
                self.move_cursor_hold(space, Some(base.page()));
            }
            let base = self.cursor;
            self.cursor = self.cursor.add_bytes(aligned);
            base
        };
        // Pin the allocation's pages.
        for page in PageRange::spanning(base, aligned).iter() {
            self.pin(page);
        }
        // Move the bump-cursor hold onto the page the cursor now sits on,
        // so a partially-carved page is never released under the cursor.
        if small {
            let hold = (self.cursor < self.chunk_end).then(|| self.cursor.page());
            self.move_cursor_hold(space, hold);
        }
        self.allocs.insert(base.raw(), aligned);
        self.stats.live_bytes += aligned;
        self.stats.va_consumed += aligned;
        base
    }

    fn pin(&mut self, page: PageIdx) {
        let count = self.page_live.entry(page.raw()).or_insert_with(|| {
            self.stats.pinned_pages += 1;
            0
        });
        *count += 1;
    }

    /// Decrements a page's pin count; releases physical backing at zero.
    /// Returns 1 if the page was released.
    fn unpin(&mut self, space: &mut AddrSpace, page_raw: u64) -> u64 {
        let count = self.page_live.get_mut(&page_raw).expect("pinned page");
        *count -= 1;
        if *count > 0 {
            return 0;
        }
        self.page_live.remove(&page_raw);
        let range = PageRange::new(PageIdx::new(page_raw), 1);
        space.decommit(range).expect("mapped");
        space.protect(range, Protection::None).expect("mapped");
        self.stats.pages_released += 1;
        self.stats.pinned_pages -= 1;
        1
    }

    fn move_cursor_hold(&mut self, space: &mut AddrSpace, new: Option<PageIdx>) {
        if self.cursor_hold == new.map(|p| p.raw()) {
            return;
        }
        if let Some(p) = new {
            self.pin(p);
        }
        if let Some(old) = self.cursor_hold.take() {
            self.unpin(space, old);
        }
        self.cursor_hold = new.map(|p| p.raw());
    }

    /// Frees the allocation at `addr`; physical pages whose last allocation
    /// this was are released and protected (a later dangling access faults
    /// — FFmalloc's `munmap` behaviour).
    ///
    /// # Errors
    ///
    /// [`FreeError::InvalidPointer`] if `addr` is not a live allocation
    /// base (which covers double frees: the base was removed by the first
    /// free, and can never come back).
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<FfFreeReport, FreeError> {
        let Some(size) = self.allocs.remove(&addr.raw()) else {
            return Err(FreeError::InvalidPointer(addr));
        };
        self.stats.frees += 1;
        self.stats.live_bytes -= size;
        let mut report = FfFreeReport::default();
        for page in PageRange::spanning(addr, size).iter() {
            report.pages_released += self.unpin(space, page.raw());
        }
        Ok(report)
    }

    /// Pages currently pinned by live allocations.
    pub fn pinned_pages(&self) -> u64 {
        self.stats.pinned_pages
    }

    /// Live allocation count.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddrSpace, FfMalloc) {
        (AddrSpace::new(), FfMalloc::new(FfConfig::standard()))
    }

    #[test]
    fn addresses_are_strictly_increasing() {
        let (mut space, mut ff) = setup();
        let mut prev = Addr::NULL;
        for i in 0..200 {
            let a = ff.malloc(&mut space, 16 + (i % 50) * 16);
            assert!(a > prev, "monotone VA");
            prev = a;
        }
    }

    #[test]
    fn freed_va_is_never_reused() {
        let (mut space, mut ff) = setup();
        let a = ff.malloc(&mut space, 64);
        ff.free(&mut space, a).unwrap();
        for _ in 0..1000 {
            assert_ne!(ff.malloc(&mut space, 64), a);
        }
    }

    #[test]
    fn double_free_is_rejected() {
        let (mut space, mut ff) = setup();
        let a = ff.malloc(&mut space, 64);
        ff.free(&mut space, a).unwrap();
        assert_eq!(ff.free(&mut space, a), Err(FreeError::InvalidPointer(a)));
    }

    #[test]
    fn page_released_when_last_allocation_dies() {
        let (mut space, mut ff) = setup();
        // Fill most of one page with 256 B allocations.
        let addrs: Vec<Addr> = (0..16).map(|_| ff.malloc(&mut space, 256)).collect();
        for &a in &addrs {
            space.write_word(a, 1).unwrap();
        }
        assert!(space.rss_bytes() >= PAGE_SIZE as u64);
        let mut released = 0;
        for &a in &addrs {
            released += ff.free(&mut space, a).unwrap().pages_released;
        }
        assert_eq!(released, 1, "page released exactly once, on the last free");
    }

    #[test]
    fn dangling_access_to_released_page_faults() {
        let (mut space, mut ff) = setup();
        let a = ff.malloc(&mut space, 100_000);
        space.write_word(a, 7).unwrap();
        ff.free(&mut space, a).unwrap();
        assert!(space.read_word(a).is_err(), "use-after-free faults cleanly");
        assert!(space.write_word(a, 0xbad).is_err());
    }

    #[test]
    fn one_survivor_pins_the_page() {
        // The fragmentation pathology: page stays resident for one object.
        let (mut space, mut ff) = setup();
        let addrs: Vec<Addr> = (0..16).map(|_| ff.malloc(&mut space, 256)).collect();
        for &a in &addrs {
            space.write_word(a, 1).unwrap();
        }
        for &a in addrs.iter().skip(1) {
            ff.free(&mut space, a).unwrap();
        }
        assert!(ff.pinned_pages() >= 1);
        assert!(space.rss_bytes() >= PAGE_SIZE as u64, "survivor pins RSS");
    }

    #[test]
    fn large_allocations_get_fresh_pages() {
        let (mut space, mut ff) = setup();
        let a = ff.malloc(&mut space, 50_000);
        assert!(a.is_aligned(PAGE_SIZE as u64));
        assert_eq!(ff.usable_size(a), Some(50_000u64.next_multiple_of(16)));
        let r = ff.free(&mut space, a).unwrap();
        assert_eq!(r.pages_released, 13);
    }

    #[test]
    fn stats_balance() {
        let (mut space, mut ff) = setup();
        let a = ff.malloc(&mut space, 64);
        let b = ff.malloc(&mut space, 64);
        assert_eq!(ff.stats().live_bytes, 128);
        ff.free(&mut space, a).unwrap();
        assert_eq!(ff.stats().live_bytes, 64);
        assert_eq!(ff.live_allocations(), 1);
        assert_eq!(ff.allocation_range(b + 8), Some((b, 64)));
    }

    #[test]
    fn va_consumption_is_monotone_under_churn() {
        let (mut space, mut ff) = setup();
        let mut consumed = 0;
        for _ in 0..100 {
            let a = ff.malloc(&mut space, 1024);
            ff.free(&mut space, a).unwrap();
            assert!(ff.stats().va_consumed > consumed);
            consumed = ff.stats().va_consumed;
        }
        assert_eq!(consumed, 100 * 1024);
    }
}
