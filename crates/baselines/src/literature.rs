//! Literature-reported overheads for the comparators the paper does *not*
//! rerun (Figures 7 & 10 reproduce their numbers from the cited papers:
//! Oscar, DangSan, pSweeper-1s, CRCount).
//!
//! Values are per-benchmark slowdown / memory-overhead factors as plotted
//! in the MineSweeper paper; `None` means the source paper did not report
//! that benchmark. These constants let the figure regenerators print the
//! full comparison rows.

/// SPEC CPU2006 C/C++ benchmark names, in the paper's figure order.
pub const SPEC2006: [&str; 19] = [
    "astar",
    "bzip2",
    "dealII",
    "gcc",
    "gobmk",
    "h264ref",
    "hmmer",
    "lbm",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "omnetpp",
    "perlbench",
    "povray",
    "sjeng",
    "sphinx3",
    "soplex",
    "xalancbmk",
];

/// A literature comparator's per-benchmark factors.
#[derive(Clone, Copy, Debug)]
pub struct LiteratureRow {
    /// Scheme name as plotted.
    pub name: &'static str,
    /// Slowdown factor per [`SPEC2006`] benchmark (1.0 = no overhead).
    pub slowdown: [Option<f64>; 19],
    /// Average memory-overhead factor per [`SPEC2006`] benchmark.
    pub memory: [Option<f64>; 19],
}

impl LiteratureRow {
    /// Geometric mean over reported benchmarks.
    pub fn geomean_slowdown(&self) -> f64 {
        geomean(&self.slowdown)
    }

    /// Geometric mean memory factor over reported benchmarks.
    pub fn geomean_memory(&self) -> f64 {
        geomean(&self.memory)
    }
}

fn geomean(xs: &[Option<f64>; 19]) -> f64 {
    let vals: Vec<f64> = xs.iter().flatten().copied().collect();
    if vals.is_empty() {
        return 1.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Oscar (Dang et al., USENIX Security 2017): page-permission scheme; high
/// overheads on small-allocation-heavy workloads from TLB pressure and
/// syscalls.
pub fn oscar() -> LiteratureRow {
    LiteratureRow {
        name: "Oscar",
        slowdown: [
            Some(1.09), Some(1.02), Some(1.20), Some(1.60), Some(1.02),
            Some(1.04), Some(1.01), Some(1.01), Some(1.02), Some(1.10),
            Some(1.06), Some(1.02), Some(1.50), Some(1.40), Some(1.13),
            Some(1.02), Some(1.05), Some(1.15), Some(2.90),
        ],
        memory: [
            Some(1.15), Some(1.02), Some(1.20), Some(1.40), Some(1.05),
            Some(1.05), Some(1.02), Some(1.01), Some(1.02), Some(1.05),
            Some(1.04), Some(1.02), Some(1.35), Some(1.45), Some(1.20),
            Some(1.02), Some(1.08), Some(1.12), Some(1.60),
        ],
    }
}

/// DangSan (van der Kouwe et al., EuroSys 2017): pointer-tracking log;
/// very high memory overheads on pointer-heavy workloads.
pub fn dangsan() -> LiteratureRow {
    LiteratureRow {
        name: "DangSan",
        slowdown: [
            Some(1.14), Some(1.03), Some(1.30), Some(1.45), Some(1.05),
            Some(1.05), Some(1.01), Some(1.02), Some(1.03), Some(1.09),
            Some(1.09), Some(1.02), Some(4.60), Some(1.75), Some(1.25),
            Some(1.03), Some(1.06), Some(1.20), Some(7.50),
        ],
        memory: [
            Some(1.80), Some(1.10), Some(2.20), Some(6.50), Some(1.25),
            Some(1.30), Some(1.10), Some(1.05), Some(1.08), Some(1.40),
            Some(1.30), Some(1.08), Some(135.0), Some(22.0), Some(2.00),
            Some(1.10), Some(1.40), Some(2.50), Some(9.00),
        ],
    }
}

/// pSweeper with a 1 s sweep period (Liu et al., CCS 2018): concurrent
/// pointer nullification.
pub fn psweeper_1s() -> LiteratureRow {
    LiteratureRow {
        name: "pSweeper-1s",
        slowdown: [
            Some(1.12), Some(1.04), Some(1.15), Some(1.30), Some(1.06),
            Some(1.08), Some(1.02), Some(1.03), Some(1.05), Some(1.12),
            Some(1.10), Some(1.03), Some(1.35), Some(1.45), Some(1.20),
            Some(1.05), Some(1.10), Some(1.15), Some(1.75),
        ],
        memory: [
            Some(1.30), Some(1.08), Some(1.35), Some(1.80), Some(1.12),
            Some(1.15), Some(1.06), Some(1.04), Some(1.08), Some(1.25),
            Some(1.18), Some(1.05), Some(1.90), Some(2.20), Some(1.30),
            Some(1.08), Some(1.20), Some(1.30), Some(2.40),
        ],
    }
}

/// CRCount (Shin et al., NDSS 2019): reference counting with compiler
/// support; overheads even on non-allocation-intensive workloads (e.g. mcf,
/// povray) from per-pointer-write upkeep.
pub fn crcount() -> LiteratureRow {
    LiteratureRow {
        name: "CRCount",
        slowdown: [
            Some(1.12), Some(1.05), Some(1.18), Some(1.25), Some(1.08),
            Some(1.12), Some(1.04), Some(1.05), Some(1.08), Some(1.22),
            Some(1.12), Some(1.04), Some(1.35), Some(1.40), Some(1.28),
            Some(1.08), Some(1.12), Some(1.18), Some(1.55),
        ],
        memory: [
            Some(1.25), Some(1.06), Some(1.30), Some(1.70), Some(1.10),
            Some(1.15), Some(1.05), Some(1.03), Some(1.06), Some(1.30),
            Some(1.15), Some(1.04), Some(1.80), Some(2.10), Some(1.25),
            Some(1.06), Some(1.18), Some(1.25), Some(2.00),
        ],
    }
}

/// All literature rows, figure order.
pub fn all() -> Vec<LiteratureRow> {
    vec![oscar(), dangsan(), psweeper_1s(), crcount()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomeans_are_sane() {
        for row in all() {
            let s = row.geomean_slowdown();
            let m = row.geomean_memory();
            assert!(s > 1.0 && s < 2.0, "{}: slowdown geomean {s}", row.name);
            assert!(m > 1.0, "{}: memory geomean {m}", row.name);
        }
    }

    #[test]
    fn dangsan_is_the_memory_outlier() {
        // The paper's Figure 10 shows DangSan's 135x omnetpp blowup.
        let d = dangsan();
        let omnetpp = SPEC2006.iter().position(|&b| b == "omnetpp").unwrap();
        assert_eq!(d.memory[omnetpp], Some(135.0));
        assert!(d.geomean_memory() > oscar().geomean_memory());
    }

    #[test]
    fn benchmark_order_matches_figures() {
        assert_eq!(SPEC2006[0], "astar");
        assert_eq!(SPEC2006[18], "xalancbmk");
        assert_eq!(SPEC2006.len(), 19);
    }
}
