//! Acceptance test for the telemetry pipeline (ISSUE: a deterministic sim
//! run with tracing enabled must produce a JSONL event stream and a
//! metrics snapshot whose aggregated totals exactly match the layer's
//! `MsStats` counters).

use sim::{Engine, System, ENGINE_SUBSYSTEM};
use telemetry::{JsonlSink, RunReport, SharedBuf, Snapshot};
use workloads::{LifetimeDist, Profile, SizeDist};

fn fast_profile() -> Profile {
    Profile {
        total_allocs: 4_000,
        cycles_per_alloc: 300,
        size_dist: SizeDist::LogNormal { median: 64, sigma: 2.5, cap: 64 * 1024 },
        lifetime: LifetimeDist::Mixture(vec![
            (0.9, LifetimeDist::Exp(100.0)),
            (0.1, LifetimeDist::Exp(1_500.0)),
        ]),
        ..Profile::demo()
    }
}

/// Runs one traced deterministic run; returns the JSONL text and metrics.
fn traced_run(system: System, seed: u64) -> (String, sim::RunMetrics) {
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&fast_profile(), system, seed);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    let m = eng.run();
    (buf.contents(), m)
}

#[test]
fn trace_totals_match_layer_counters() {
    let (jsonl, m) = traced_run(System::minesweeper_default(), 7);
    let snap = m.telemetry.as_ref().expect("layered run exports a snapshot");
    let report = RunReport::from_jsonl(&jsonl).unwrap();
    assert!(!report.sweeps.is_empty(), "churn must trigger sweeps");

    // The full event/counter cross-check: sweeps, releases, bytes, failed
    // frees, swept bytes, STW pages and quarantine flushes all reconcile.
    report.reconcile(snap).expect("trace aggregates == registry counters");

    // Spot-check the headline counters against the derived RunMetrics.
    assert_eq!(report.sweeps.len() as u64, m.sweeps);
    assert_eq!(report.total_failed_frees(), m.failed_frees);
    assert_eq!(snap.counter("layer", "sweeps"), Some(m.sweeps));
    assert_eq!(snap.counter("layer", "released"), Some(report.total_released()));

    // Engine histograms live in the same snapshot: one sweep_cycles
    // observation per sweep.
    let sweep_h = snap.histogram(ENGINE_SUBSYSTEM, "sweep_cycles").unwrap();
    assert_eq!(sweep_h.count(), m.sweeps);
}

#[test]
fn mostly_concurrent_trace_reconciles_with_stw_events() {
    let (jsonl, m) = traced_run(System::minesweeper_mostly(), 9);
    let snap = m.telemetry.as_ref().unwrap();
    let report = RunReport::from_jsonl(&jsonl).unwrap();
    report.reconcile(snap).expect("mostly-concurrent trace reconciles");
    assert!(
        report.total_stw_pages() > 0,
        "mostly-concurrent sweeps must re-check soft-dirty pages"
    );
    assert!(jsonl.lines().any(|l| l.contains("\"stw_pass\"")));
}

/// A dangling-heavy profile: enough stale pointers survive frees that
/// sweeps reliably retain entries (long-lived pinners for forensics).
fn pinner_profile() -> Profile {
    Profile { dangling_rate: 0.05, ..fast_profile() }
}

#[test]
fn forensic_run_reconciles_and_attributes_pinners() {
    use minesweeper::{ForensicsMode, MsConfig};

    let cfg =
        MsConfig { forensics: ForensicsMode::Full, ..MsConfig::fully_concurrent() };
    let (jsonl, m) = {
        let buf = SharedBuf::new();
        let mut eng = Engine::new(&pinner_profile(), System::MineSweeper(cfg), 23);
        assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
        let m = eng.run();
        (buf.contents(), m)
    };
    let snap = m.telemetry.as_ref().unwrap();
    let report = RunReport::from_jsonl(&jsonl).unwrap();

    assert!(report.has_forensics(), "forensic events must appear in the trace");
    assert!(m.failed_frees > 0, "pinner profile must produce failed frees");
    assert!(
        snap.counter("layer", "pin_edges").unwrap_or(0) > 0,
        "dangling pointers must record provenance edges"
    );
    // The full forensic cross-check: pin-edge totals, ledger byte flow,
    // fail-event counts and the live pinned set all reconcile.
    report.reconcile(snap).expect("forensic trace reconciles");

    let table = report.pinner_table();
    assert!(table.contains("pinned sites"), "table:\n{table}");
    assert!(report.total_pin_hits() > 0);

    // Sampled mode records fewer edges but the ledger is exact, so the
    // reconciliation still holds.
    let cfg = MsConfig {
        forensics: ForensicsMode::Sampled(8),
        ..MsConfig::fully_concurrent()
    };
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&pinner_profile(), System::MineSweeper(cfg), 23);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    let m = eng.run();
    let report = RunReport::from_jsonl(&buf.contents()).unwrap();
    report.reconcile(m.telemetry.as_ref().unwrap()).expect("sampled reconciles");
}

#[test]
fn deterministic_traces_are_bit_identical() {
    let (a, ma) = traced_run(System::minesweeper_default(), 11);
    let (b, mb) = traced_run(System::minesweeper_default(), 11);
    assert_eq!(a, b, "identical seeds must produce identical traces");
    assert_eq!(ma.telemetry, mb.telemetry);
    // And the snapshot survives its JSON round-trip.
    let snap = ma.telemetry.unwrap();
    assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
}

#[test]
fn profiled_run_attributes_and_reconciles() {
    use minesweeper::{MsConfig, SWEEP_SUBSYSTEM};

    let cfg = MsConfig { profiler: true, ..MsConfig::fully_concurrent() };
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&fast_profile(), System::MineSweeper(cfg), 7);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    let m = eng.run();
    let jsonl = buf.contents();
    let snap = m.telemetry.as_ref().unwrap();
    let report = RunReport::from_jsonl(&jsonl).unwrap();
    report.reconcile(snap).expect("profiled trace still reconciles");

    // Profiler attribution is in the snapshot and on the MarkPhase events.
    assert!(
        snap.histogram(SWEEP_SUBSYSTEM, "step_scan_ns").map_or(0, |h| h.count()) > 0,
        "profiled run must record step scan times"
    );
    assert!(jsonl.contains("\"prof_scan_ns\""), "MarkPhase events carry prof keys");
    let prof: Vec<_> = report.sweeps.iter().filter_map(|s| s.mark_prof).collect();
    assert_eq!(prof.len(), report.sweeps.len(), "every sweep's MarkPhase is profiled");
    assert!(
        prof.iter().any(|p| p.wc_window_bits + p.wc_direct > 0),
        "marks must be attributed to the direct or window path"
    );

    // Deterministic mode keeps its bit-identity promise with the
    // profiler on: scan_ns is zeroed like every other wall-clock field,
    // and the remaining prof counters are deterministic.
    let buf2 = SharedBuf::new();
    let cfg = MsConfig { profiler: true, ..MsConfig::fully_concurrent() };
    let mut eng = Engine::new(&fast_profile(), System::MineSweeper(cfg), 7);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf2.clone())), true));
    eng.run();
    assert_eq!(jsonl, buf2.contents(), "profiled deterministic traces are bit-identical");

    // An identical run with the profiler off emits no prof keys and
    // registers no sweep.* metrics at all.
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&fast_profile(), System::minesweeper_default(), 7);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    let m_off = eng.run();
    assert!(!buf.contents().contains("prof_scan_ns"));
    let snap_off = m_off.telemetry.as_ref().unwrap();
    assert!(snap_off.histogram(SWEEP_SUBSYSTEM, "step_scan_ns").is_none());
    // The profiler must not change behaviour: same deterministic
    // sweep/release decisions either way.
    assert_eq!(m.sweeps, m_off.sweeps);
    assert_eq!(m.failed_frees, m_off.failed_frees);
}

#[test]
fn slo_watchdog_emits_violations_into_the_trace() {
    use telemetry::SloPolicy;

    // Impossible objectives: any sweep breaches a zero-cycle pause budget.
    let policy = SloPolicy::parse("stw=0,sweep=0,util=101").unwrap();
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&fast_profile(), System::minesweeper_mostly(), 9);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    eng.set_slo_policy(policy);
    let m = eng.run();
    let jsonl = buf.contents();
    assert!(jsonl.contains("\"slo_violation\""), "breaches must appear in the trace");
    let report = RunReport::from_jsonl(&jsonl).unwrap();
    assert!(
        report.slo_violations.iter().any(|v| v.objective == "stw"),
        "stw=0 must be breached: {:?}",
        report.slo_violations
    );
    assert!(report.slo_violations.iter().any(|v| v.objective == "sweep"));
    report.reconcile(m.telemetry.as_ref().unwrap()).expect("violations don't break reconcile");

    // Environment stamping: requested vs effective helpers and the scan
    // tier are first-class counters in the same snapshot.
    let snap = m.telemetry.as_ref().unwrap();
    let requested = snap.counter(ENGINE_SUBSYSTEM, "requested_helpers");
    let effective = snap.counter(ENGINE_SUBSYSTEM, "effective_helpers");
    assert_eq!(requested, Some(7), "default config: 6 helpers + main sweeper");
    assert!(effective.unwrap_or(0) >= 1 && effective <= requested);

    // A generous policy on the same run passes: no violation events.
    let buf = SharedBuf::new();
    let mut eng = Engine::new(&fast_profile(), System::minesweeper_mostly(), 9);
    assert!(eng.set_trace_sink(Box::new(JsonlSink::new(buf.clone())), true));
    eng.set_slo_policy(SloPolicy::parse("stw=18446744073709551615").unwrap());
    eng.run();
    assert!(!buf.contents().contains("slo_violation"));
}
