//! Properties of the cost-attribution ledger: every dimension of the
//! ledger conserves (kinds, sites and arenas each sum to
//! `cost/total_cycles`, and each kind's counter matches its histogram),
//! turning the ledger off leaves the run bit-identical, and the
//! deliberate leak knob is caught *by name* by reconciliation.

use proptest::prelude::*;

use sim::{run, CostKind, CostLedger, Engine, RunMetrics, System};
use workloads::{LifetimeDist, Profile, SizeDist};

fn ledger_of(m: &RunMetrics) -> CostLedger {
    let snap = m.telemetry.as_ref().expect("layered run carries telemetry");
    CostLedger::from_snapshot(snap).expect("ledger is on by default for layered systems")
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        100u64..1_200,
        50u64..8_000,
        0.0f64..1.2,  // ptr_density
        0.0f64..0.03, // dangling
    )
        .prop_map(|(allocs, cpa, ptr, dangling)| Profile {
            total_allocs: allocs,
            cycles_per_alloc: cpa,
            size_dist: SizeDist::LogNormal { median: 96, sigma: 2.5, cap: 64 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.85, LifetimeDist::Exp(120.0)),
                (0.13, LifetimeDist::Exp(2_500.0)),
                (0.02, LifetimeDist::Permanent),
            ]),
            ptr_density: ptr,
            dangling_rate: dangling,
            ..Profile::demo()
        })
}

fn arb_layered_system() -> impl Strategy<Value = System> {
    prop_oneof![
        Just(System::minesweeper_default()),
        Just(System::minesweeper_mostly()),
        Just(System::minesweeper_scudo()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ledger_conserves_across_every_dimension(
        profile in arb_profile(),
        system in arb_layered_system(),
        seed in any::<u64>(),
    ) {
        let m = run(&profile, system, seed);
        let ledger = ledger_of(&m);
        prop_assert_eq!(ledger.reconcile(), Vec::<String>::new());
        prop_assert_eq!(ledger.kind_sum(), ledger.total);
        let site_sum: u64 = ledger.sites.iter().map(|(_, v)| v).sum();
        let arena_sum: u64 = ledger.arenas.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(site_sum, ledger.total);
        prop_assert_eq!(arena_sum, ledger.total);
        // A quarantining run always pays for at least its inserts.
        prop_assert!(ledger.total > 0, "layered run must be billed");
    }

    #[test]
    fn ledger_off_runs_are_bit_identical(
        profile in arb_profile(),
        system in arb_layered_system(),
        seed in any::<u64>(),
    ) {
        let on = run(&profile, system, seed);
        let mut engine = Engine::new(&profile, system, seed);
        engine.set_cost_ledger(false);
        let off = engine.run();
        prop_assert_eq!(on.mutator_cycles, off.mutator_cycles);
        prop_assert_eq!(on.background_cycles, off.background_cycles);
        prop_assert_eq!(on.pause_cycles, off.pause_cycles);
        prop_assert_eq!(on.stw_cycles, off.stw_cycles);
        prop_assert_eq!(on.peak_rss, off.peak_rss);
        prop_assert_eq!(&on.rss_series, &off.rss_series);
        prop_assert_eq!(on.sweeps, off.sweeps);
        prop_assert_eq!(on.failed_frees, off.failed_frees);
        let snap = off.telemetry.as_ref().expect("telemetry stays on");
        prop_assert_eq!(
            snap.counter(sim::COST_SUBSYSTEM, "total_cycles").unwrap_or(0),
            0,
            "a disabled ledger must record nothing"
        );
    }
}

#[test]
fn dropped_kind_is_caught_by_name() {
    let profile = Profile::demo();
    for kind in [CostKind::Zeroing, CostKind::Quarantine, CostKind::MarkScan] {
        let mut engine = Engine::new(&profile, System::minesweeper_default(), 42);
        engine.set_cost_drop(kind);
        let m = engine.run();
        let ledger = ledger_of(&m);
        let leaks = ledger.reconcile();
        assert!(
            leaks.iter().any(|l| l.contains(kind.label())),
            "dropping {} must be reported by name, got {leaks:?}",
            kind.label()
        );
    }
}

#[test]
fn site_attribution_covers_the_free_path() {
    // The demo profile frees from many sites; zeroing + quarantine are
    // charged at the freeing site, sweeps stay unattributed ("none").
    let m = run(&Profile::demo(), System::minesweeper_default(), 7);
    let ledger = ledger_of(&m);
    assert!(
        ledger.sites.iter().any(|(k, v)| k != "none" && *v > 0),
        "free-path charges must land on real sites: {:?}",
        ledger.sites
    );
    assert!(
        ledger.sites.iter().any(|(k, _)| k == "none"),
        "sweep charges stay site-unattributed"
    );
}
