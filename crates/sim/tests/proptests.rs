//! Property tests for the simulation engine: for arbitrary small
//! profiles, every system preserves the cross-cutting invariants (a
//! `cargo test`-sized version of the `soak` binary).

use proptest::prelude::*;

use sim::{run, System};
use workloads::{LifetimeDist, Profile, SizeDist};

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        100u64..1_500,
        50u64..10_000,
        0.0f64..1.2,   // ptr_density
        0.0f64..0.03,  // dangling
        0.0f64..1.5,   // cache sensitivity
        1u32..5,       // phases
        0.0f64..0.3,   // phase_frac
    )
        .prop_map(|(allocs, cpa, ptr, dangling, sens, phases, pfrac)| Profile {
            total_allocs: allocs,
            cycles_per_alloc: cpa,
            size_dist: SizeDist::LogNormal { median: 96, sigma: 2.5, cap: 64 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.85, LifetimeDist::Exp(120.0)),
                (0.13, LifetimeDist::Exp(2_500.0)),
                (0.02, LifetimeDist::Permanent),
            ]),
            ptr_density: ptr,
            dangling_rate: dangling,
            cache_sensitivity: sens,
            phases,
            phase_frac: pfrac,
            ..Profile::demo()
        })
}

fn arb_system() -> impl Strategy<Value = System> {
    prop_oneof![
        Just(System::minesweeper_default()),
        Just(System::minesweeper_mostly()),
        Just(System::markus_default()),
        Just(System::FfMalloc),
        Just(System::ScudoBaseline),
        Just(System::minesweeper_scudo()),
        Just(System::CrCount),
        Just(System::Oscar),
        Just(System::PSweeper),
        Just(System::DangSan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_system_any_profile_preserves_invariants(
        profile in arb_profile(),
        system in arb_system(),
        seed in any::<u64>(),
    ) {
        let base = run(&profile, System::Baseline, seed);
        prop_assert_eq!(base.allocs, profile.total_allocs);
        prop_assert_eq!(base.frees, profile.total_allocs);
        prop_assert_eq!(base.background_cycles, 0);

        let m = run(&profile, system, seed);
        prop_assert_eq!(m.allocs, profile.total_allocs);
        prop_assert_eq!(m.frees, profile.total_allocs, "no system may lose frees");
        // Sub-1.0 is legitimate: a bump allocator (FFmalloc) can beat the
        // arena path on zero-reuse micro-profiles, and aggressive purging
        // can shave baseline RSS costs — Figure 19's axis starts at 0.5.
        let slowdown = m.slowdown_vs(&base);
        prop_assert!((0.4..100.0).contains(&slowdown),
            "{}: slowdown {slowdown}", system.label());
        // RSS sanity: series is time-monotone and peak dominates it.
        for w in m.rss_series.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        let series_max = m.rss_series.iter().map(|&(_, r)| r).max().unwrap_or(0);
        prop_assert!(m.peak_rss >= series_max);
        prop_assert!(m.cpu_utilisation() >= 1.0 - 1e-9);
    }

    #[test]
    fn identical_seeds_identical_runs_for_any_system(
        profile in arb_profile(),
        system in arb_system(),
        seed in any::<u64>(),
    ) {
        let a = run(&profile, system, seed);
        let b = run(&profile, system, seed);
        prop_assert_eq!(a.mutator_cycles, b.mutator_cycles);
        prop_assert_eq!(a.background_cycles, b.background_cycles);
        prop_assert_eq!(a.peak_rss, b.peak_rss);
        prop_assert_eq!(a.sweeps, b.sweeps);
        prop_assert_eq!(a.failed_frees, b.failed_frees);
    }
}
