//! Property tests for the adversarial security corpus: the matrix the CI
//! gate diffs must be deterministic, and every scenario the generators
//! can emit must be well-formed and runnable on every backend column.

use proptest::prelude::*;

use sim::{run_corpus, run_scenario, SecSystem, Weaken};
use workloads::exploit::{corpus, fuzz_corpus, validate, ExploitOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identical serialisation for identical (seed, fuzz) inputs —
    /// the invariant that lets CI treat any diff against the committed
    /// baseline as a real behaviour change rather than noise.
    #[test]
    fn corpus_is_deterministic(seed in any::<u64>(), fuzz in 0u32..4) {
        let a = run_corpus(seed, fuzz, Weaken::None);
        let b = run_corpus(seed, fuzz, Weaken::None);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    /// Every fuzzed scenario passes the validator and runs to a verdict
    /// on every backend without opening an attack window the judge
    /// misses: if the victim was never reallocated, the window must be
    /// closed, and vice versa.
    #[test]
    fn fuzzed_scenarios_are_well_formed(seed in any::<u64>()) {
        for sc in fuzz_corpus(seed, 4) {
            prop_assert!(validate(&sc.steps).is_ok(), "{}", sc.name);
            for sys in SecSystem::all() {
                let run = run_scenario(&sc, &sys, Weaken::None);
                prop_assert_eq!(
                    run.attack_window.is_some(),
                    run.victim_reallocated,
                    "{} on {}: window/reuse disagree", sc.name, sys.label()
                );
                if run.outcome == ExploitOutcome::Compromised {
                    prop_assert!(
                        run.victim_reallocated,
                        "{} on {}: compromise without reuse", sc.name, sys.label()
                    );
                }
            }
        }
    }
}

/// The named corpus is fixed; pin its shape so a stray edit cannot
/// silently shrink the matrix the baseline was computed over.
#[test]
fn named_corpus_shape_is_pinned() {
    let named = corpus();
    assert!(named.len() >= 8, "ISSUE floor: at least 8 named scenarios");
    for sc in &named {
        assert!(validate(&sc.steps).is_ok(), "{}", sc.name);
        assert!(!sc.summary.is_empty(), "{} needs a summary", sc.name);
    }
    let mut names: Vec<_> = named.iter().map(|s| s.name.clone()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), named.len(), "scenario names must be unique");
}

/// Weakened matrices are permanently marked and differ from the real one.
#[test]
fn weakened_matrix_is_marked_and_distinct() {
    let real = run_corpus(42, 0, Weaken::None);
    let weak = run_corpus(42, 0, Weaken::QuarantineOff);
    assert_eq!(real.weaken, "none");
    assert_eq!(weak.weaken, "quarantine-off");
    assert_ne!(real.to_json(), weak.to_json());
    assert!(
        weak.column("minesweeper").any(|c| c.outcome == ExploitOutcome::Compromised),
        "quarantine-off must reopen minesweeper"
    );
    assert!(
        real.column("minesweeper").all(|c| c.outcome != ExploitOutcome::Compromised),
        "the real configuration must hold the line"
    );
}
