//! Multi-tenant simulation: N mutators driving N arenas that share one
//! sweep scheduler and one helper pool.
//!
//! The single-system [`crate::Engine`] models the paper's setting — one
//! process, one heap, one sweeper. This driver models the deployment the
//! sharded layer exists for: every tenant replays its own
//! [`workloads::TraceGen`] stream against its own [`minesweeper::Arena`],
//! the [`minesweeper::SweepScheduler`] batches their quarantine pressure
//! into coalesced rounds, and one work-stealing helper pool marks every
//! scheduled arena in a single pass.
//!
//! Telemetry goes to **one shared registry** with two independent views
//! of the same work:
//!
//! * per-shard counters (`arena/a{k}_*`), copied from each layer's own
//!   statistics at finalize, and
//! * global totals (`arena/total_*`), accumulated *during the run* from
//!   per-free deltas and per-round reports.
//!
//! `ms-report --check` reconciles the two — if sharding ever lost an
//! update (a free attributed to the wrong shard, a round double-counted),
//! the sums diverge.

use minesweeper::{ArenaPool, MsConfig};
use telemetry::{CostKind, CostRecorder, Histogram, Registry};
use vmem::{Addr, Segment};
use workloads::{Op, Profile, TraceGen};

use crate::cost::CostModel;
use crate::metrics::RunMetrics;

/// Subsystem label for the shard counters and per-arena histograms.
pub const ARENA_SUBSYSTEM: &str = "arena";

/// Per-arena mutator state.
struct Tenant {
    ops: std::vec::IntoIter<Op>,
    /// id -> base for live allocations of this tenant.
    objects: std::collections::HashMap<u64, Addr>,
    /// Next stack root slot a dangling free parks its stale pointer in.
    next_root: u64,
    /// Histograms for this arena on the shared registry.
    pause_cycles: Histogram,
    stw_cycles: Histogram,
    sweep_cycles: Histogram,
    done: bool,
}

/// Totals accumulated during the run, independently of the per-layer
/// statistics the shard counters are copied from at finalize.
#[derive(Default)]
struct Totals {
    quarantined_bytes: u64,
    released_bytes: u64,
    failed_frees: u64,
    sweeps: u64,
}

/// Runs `profile` as `n` identically-shaped tenants (seeds `seed`,
/// `seed+1`, …) over one [`ArenaPool`] under `cfg`, interleaving the
/// mutator streams round-robin and letting the scheduler decide when each
/// arena sweeps. Returns metrics whose telemetry snapshot carries the
/// per-shard counters, the independently accumulated `arena/total_*`
/// globals, and per-arena pause/STW/sweep histograms.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn run_arenas(profile: &Profile, n: u32, seed: u64, cfg: MsConfig) -> RunMetrics {
    assert!(n > 0, "at least one arena");
    let cost = CostModel::desktop();
    let registry = Registry::new();
    let mut cost_rec = CostRecorder::new(&registry);
    let mut pool = ArenaPool::new(n, cfg);
    pool.set_helpers(cfg.helper_threads);
    let labels: Vec<String> = (0..n as usize).map(|k| pool.arena(k).id().label()).collect();
    let mut tenants: Vec<Tenant> = (0..n)
        .map(|k| {
            let ops: Vec<Op> =
                TraceGen::new(profile, seed.wrapping_add(k as u64)).collect();
            Tenant {
                ops: ops.into_iter(),
                objects: std::collections::HashMap::new(),
                next_root: 0,
                pause_cycles: registry
                    .histogram(ARENA_SUBSYSTEM, &format!("a{k}_pause_cycles")),
                stw_cycles: registry
                    .histogram(ARENA_SUBSYSTEM, &format!("a{k}_stw_cycles")),
                sweep_cycles: registry
                    .histogram(ARENA_SUBSYSTEM, &format!("a{k}_sweep_cycles")),
                done: false,
            }
        })
        .collect();
    let mut totals = Totals::default();
    let mut metrics = RunMetrics {
        benchmark: profile.name.to_string(),
        system: format!("minesweeper-arenas{n}"),
        ..RunMetrics::default()
    };
    metrics.rss_series.push((0, 0));
    let mut now = 0u64;
    let mut background = 0u64;
    let run_cycles = profile.total_allocs.max(1) * profile.cycles_per_alloc.max(1);
    let sample_interval = (run_cycles / 256).max(10_000);
    let mut next_sample = sample_interval;
    let root_slots = profile.root_slots.max(1) as u64;

    // Round-robin over the tenants until every stream is drained.
    let mut active = n as usize;
    while active > 0 {
        for k in 0..n as usize {
            if tenants[k].done {
                continue;
            }
            let Some(op) = tenants[k].ops.next() else {
                tenants[k].done = true;
                active -= 1;
                continue;
            };
            match op {
                Op::Work(c) => now += c,
                Op::Alloc { id, size, site: _ } => {
                    metrics.allocs += 1;
                    let base = pool.arena_mut(k).malloc(size);
                    // Programs initialise what they allocate.
                    let _ = pool.arena_mut(k).space_mut().write_word(base, 1);
                    tenants[k].objects.insert(id, base);
                    now += cost.malloc_fast;
                }
                Op::Free { id } => {
                    metrics.frees += 1;
                    let Some(base) = tenants[k].objects.remove(&id) else {
                        continue;
                    };
                    // A dangling free parks a stale pointer to the dying
                    // object in one of this tenant's (rotating, hence
                    // eventually recycled) stack root slots.
                    let dangle =
                        (base.raw() >> 4).wrapping_mul(0x9e37_79b9) % 1000
                            < (profile.dangling_rate * 1000.0) as u64;
                    let st0 = pool.arena(k).ms().stats();
                    pool.arena_mut(k).free(base);
                    let st = pool.arena(k).ms().stats();
                    totals.quarantined_bytes +=
                        st.quarantined_bytes - st0.quarantined_bytes;
                    let zeroing = cost.zero_cost(st.zeroed_bytes - st0.zeroed_bytes);
                    let mut quarantine = cost.quarantine_insert;
                    if st.unmapped_pages > st0.unmapped_pages {
                        quarantine += cost.unmap_syscall;
                    }
                    cost_rec.charge(CostKind::Zeroing, zeroing, None, Some(&labels[k]));
                    cost_rec.charge(
                        CostKind::Quarantine,
                        quarantine,
                        None,
                        Some(&labels[k]),
                    );
                    now += zeroing + quarantine;
                    let slot = tenants[k].next_root % root_slots;
                    tenants[k].next_root += 1;
                    let root = pool.arena(k).space().layout().segment_base(Segment::Stack)
                        + slot * 8;
                    let value = if dangle { base.raw() } else { 0 };
                    pool.arena_mut(k)
                        .space_mut()
                        .write_word(root, value)
                        .expect("stack is mapped");
                }
                Op::Teardown => {}
            }
            sweep_if_due(
                &mut pool, &mut tenants, &cost, &mut cost_rec, &labels, &mut totals,
                &mut metrics, &mut now, &mut background,
            );
        }
        while now >= next_sample {
            let rss: u64 = pool.iter().map(|a| a.space().rss_bytes()).sum::<u64>()
                + pool.iter().map(|a| a.ms().quarantine().len() as u64 * 64).sum::<u64>();
            metrics.peak_rss = metrics.peak_rss.max(rss);
            metrics.rss_series.push((next_sample, rss));
            next_sample += sample_interval;
        }
    }

    // Finalize: copy each shard's own statistics next to the globals the
    // loop accumulated, stamp scheduler counters, snapshot once.
    for k in 0..n as usize {
        let st = pool.arena(k).ms().stats();
        let label = pool.arena(k).id().label();
        registry
            .counter(ARENA_SUBSYSTEM, &format!("{label}_quarantined_bytes"))
            .add(st.quarantined_bytes);
        registry
            .counter(ARENA_SUBSYSTEM, &format!("{label}_released_bytes"))
            .add(st.released_bytes);
        registry
            .counter(ARENA_SUBSYSTEM, &format!("{label}_failed_frees"))
            .add(st.failed_frees);
        registry.counter(ARENA_SUBSYSTEM, &format!("{label}_sweeps")).add(st.sweeps);
    }
    registry.counter(ARENA_SUBSYSTEM, "arenas").add(n as u64);
    registry
        .counter(ARENA_SUBSYSTEM, "total_quarantined_bytes")
        .add(totals.quarantined_bytes);
    registry.counter(ARENA_SUBSYSTEM, "total_released_bytes").add(totals.released_bytes);
    registry.counter(ARENA_SUBSYSTEM, "total_failed_frees").add(totals.failed_frees);
    registry.counter(ARENA_SUBSYSTEM, "total_sweeps").add(totals.sweeps);
    registry.counter(ARENA_SUBSYSTEM, "sched_rounds").add(pool.scheduler().rounds());
    registry
        .counter(ARENA_SUBSYSTEM, "sched_scheduled")
        .add(pool.scheduler().scheduled());
    registry
        .counter(ARENA_SUBSYSTEM, "sched_coalesced")
        .add(pool.scheduler().coalesced());

    let rss: u64 = pool.iter().map(|a| a.space().rss_bytes()).sum();
    metrics.peak_rss = metrics.peak_rss.max(rss);
    metrics.rss_series.push((now.max(1), rss));
    metrics.mutator_cycles = now.max(1);
    metrics.background_cycles = background;
    metrics.sweeps = totals.sweeps;
    metrics.failed_frees = totals.failed_frees;
    metrics.telemetry = Some(registry.snapshot());
    metrics
}

/// Gives the scheduler a chance to run one pooled round and charges its
/// costs: scheduler setup per scheduled arena, the pooled mark split over
/// the effective threads, stop-the-world pages to the mutator, and pause
/// time to any arena whose valve was already open when the round started.
#[allow(clippy::too_many_arguments)]
fn sweep_if_due(
    pool: &mut ArenaPool,
    tenants: &mut [Tenant],
    cost: &CostModel,
    cost_rec: &mut CostRecorder,
    labels: &[String],
    totals: &mut Totals,
    metrics: &mut RunMetrics,
    now: &mut u64,
    background: &mut u64,
) {
    if !pool.iter().any(|a| a.sweep_needed()) {
        return;
    }
    let paused: Vec<bool> = pool.iter().map(|a| a.ms().pause_needed()).collect();
    let round = pool.sweep_round();
    if round.swept.is_empty() {
        return;
    }
    *background += cost.sweep_round_setup * round.swept.len() as u64;
    let threads = (round.effective_helpers as u64 + 1).max(1);
    for ((id, report), stats) in round.swept.iter().zip(&round.mark_stats) {
        let k = id.raw() as usize;
        let arena = Some(labels[k].as_str());
        cost_rec.charge(CostKind::SchedSetup, cost.sweep_round_setup, None, arena);
        let (scan, skip) = cost.mark_cost_parts(
            stats.words * vmem::WORD_SIZE as u64,
            report.skipped_bytes,
            stats.heap_words,
        );
        cost_rec.charge(CostKind::MarkScan, scan, None, arena);
        cost_rec.charge(CostKind::SkipReplay, skip, None, arena);
        let mark = scan + skip;
        let wall = mark / threads;
        *background += mark;
        tenants[k].sweep_cycles.record(wall);
        let stw = report.stw_pages * cost.stw_page;
        if stw > 0 {
            *now += stw;
            metrics.stw_cycles += stw;
            tenants[k].stw_cycles.record(stw);
        }
        cost_rec.charge(CostKind::Stw, stw, None, arena);
        if paused[k] {
            // The valve was open: this tenant's mutator stalled for the
            // round's mark wall time.
            *now += wall;
            metrics.pause_cycles += wall;
            tenants[k].pause_cycles.record(wall);
            cost_rec.charge(CostKind::Stw, wall, None, arena);
        }
        let release = report.released * cost.release_entry;
        cost_rec.charge(CostKind::Release, release, None, arena);
        *background += release;
        totals.released_bytes += report.released_bytes;
        totals.failed_frees += report.failed;
        totals.sweeps += 1;
        metrics.sweeps += 1;
        metrics.failed_frees += report.failed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{LifetimeDist, SizeDist};

    fn fast_profile() -> Profile {
        Profile {
            total_allocs: 2_000,
            cycles_per_alloc: 300,
            size_dist: SizeDist::LogNormal { median: 64, sigma: 2.5, cap: 64 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.9, LifetimeDist::Exp(100.0)),
                (0.1, LifetimeDist::Exp(1_500.0)),
            ]),
            ..Profile::demo()
        }
    }

    #[test]
    fn arenas_run_sweeps_and_reconcile() {
        let m = run_arenas(&fast_profile(), 4, 7, MsConfig::fully_concurrent());
        assert!(m.sweeps > 0, "churn across 4 tenants must trigger rounds");
        let snap = m.telemetry.as_ref().expect("pool runs carry telemetry");
        assert_eq!(snap.counter(ARENA_SUBSYSTEM, "arenas"), Some(4));
        // The reconcile invariant ms-report --check gates on: shard sums
        // must equal the independently accumulated globals.
        for key in ["quarantined_bytes", "released_bytes", "failed_frees", "sweeps"] {
            let shard_sum: u64 = (0..4)
                .map(|k| {
                    snap.counter(ARENA_SUBSYSTEM, &format!("a{k}_{key}")).unwrap_or(0)
                })
                .sum();
            let total =
                snap.counter(ARENA_SUBSYSTEM, &format!("total_{key}")).unwrap_or(0);
            assert_eq!(shard_sum, total, "shard/global mismatch for {key}");
        }
        assert_eq!(
            snap.counter(ARENA_SUBSYSTEM, "total_sweeps"),
            Some(m.sweeps),
            "headline sweeps come from the same totals"
        );
    }

    #[test]
    fn identical_seeds_reproduce() {
        let a = run_arenas(&fast_profile(), 3, 11, MsConfig::fully_concurrent());
        let b = run_arenas(&fast_profile(), 3, 11, MsConfig::fully_concurrent());
        assert_eq!(a.mutator_cycles, b.mutator_cycles);
        assert_eq!(a.sweeps, b.sweeps);
        assert_eq!(a.failed_frees, b.failed_frees);
    }

    #[test]
    fn scheduler_coalesces_under_shared_pressure() {
        let m = run_arenas(&fast_profile(), 4, 3, MsConfig::fully_concurrent());
        let snap = m.telemetry.as_ref().unwrap();
        let rounds = snap.counter(ARENA_SUBSYSTEM, "sched_rounds").unwrap_or(0);
        let scheduled = snap.counter(ARENA_SUBSYSTEM, "sched_scheduled").unwrap_or(0);
        assert!(rounds > 0);
        assert!(
            scheduled >= rounds,
            "every round schedules at least the due arena"
        );
    }

    #[test]
    fn dangling_tenants_fail_frees() {
        let p = Profile { dangling_rate: 0.3, ..fast_profile() };
        let m = run_arenas(&p, 2, 13, MsConfig::fully_concurrent());
        assert!(m.failed_frees > 0, "stale root pointers must pin entries");
    }
}
