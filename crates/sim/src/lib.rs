#![warn(missing_docs)]

//! Discrete-event execution engine, cost model and experiment runner for
//! the MineSweeper reproduction.
//!
//! The paper measures wall-clock slowdown, RSS over time and CPU
//! utilisation of real benchmarks. This crate replaces the hardware with a
//! virtual clock: a mutator replays a [`workloads::TraceGen`] stream
//! against one of four systems under test (baseline JeMalloc, MineSweeper,
//! MarkUs, FFmalloc), every operation is charged cycles from a
//! [`CostModel`], and sweeps advance *in virtual time interleaved with the
//! mutator* — so concurrency, stop-the-world pauses, allocation pauses and
//! the delay-of-reuse cache penalty all emerge from the event stream
//! rather than being asserted.
//!
//! Because every configuration replays the *identically seeded* trace,
//! ratios (slowdown, memory overhead, CPU utilisation) are deterministic
//! and the cost model's absolute constants largely cancel.
//!
//! # Example
//!
//! ```
//! use sim::{run, System};
//! use workloads::Profile;
//!
//! let profile = Profile::demo();
//! let base = run(&profile, System::Baseline, 42);
//! let ms = run(&profile, System::minesweeper_default(), 42);
//! let slowdown = ms.slowdown_vs(&base);
//! assert!(slowdown >= 1.0 && slowdown < 3.0);
//! ```

mod cost;
mod engine;
mod exploit;
mod metrics;
mod pool;
pub mod report;
mod security;
mod system;

pub use cost::CostModel;
pub use engine::{Engine, ENGINE_SUBSYSTEM};
pub use exploit::{
    run_cross_arena_pin, run_exploit, run_scenario, CrossArenaReport, DefenceCost,
    ExploitReport, ScenarioRun, SecSystem, Weaken,
};
pub use metrics::{geomean, RunMetrics};
pub use pool::{run_arenas, ARENA_SUBSYSTEM};
pub use security::{
    run_corpus, SecCell, SecurityMatrix, SECURITY_MIN_SCHEMA, SECURITY_SCHEMA,
    SECURITY_SUBSYSTEM,
};
pub use telemetry::{CostKind, CostLedger, CostRecorder, COST_SUBSYSTEM};
pub use system::System;

use workloads::{Op, Profile};

/// Runs `profile` under `system` with the given seed and returns the
/// collected metrics. Convenience wrapper over [`Engine`].
pub fn run(profile: &Profile, system: System, seed: u64) -> RunMetrics {
    Engine::new(profile, system, seed).run()
}

/// Replays an explicit op stream (e.g. a parsed recorded trace) under
/// `system`; `profile` supplies the pointer-graph knobs and scaling, and
/// `seed` drives the (deterministic) pointer-graph randomness.
pub fn run_trace(
    profile: &Profile,
    system: System,
    seed: u64,
    ops: impl IntoIterator<Item = Op>,
) -> RunMetrics {
    Engine::new(profile, system, seed).run_ops(ops)
}
