//! The discrete-event mutator engine.
//!
//! Replays a workload trace against a system under test, maintaining a
//! real pointer graph in simulated memory (so sweeps and GCs find real
//! dangling pointers), charging cycle costs, and interleaving concurrent
//! sweep progress with mutator progress in virtual time.

use std::collections::HashMap;

use baselines::{
    CrCount, CrFreeOutcome, DangSan, DsFreeOutcome, FfConfig, FfMalloc, MarkUs,
    MarkUsFreeOutcome, Oscar, PSweeper, PsFreeOutcome,
};
use jalloc::{JAlloc, JallocConfig};
use minesweeper::{FreeOutcome, HeapBackend, MineSweeper, LAYER_SUBSYSTEM};
use scudo::Scudo;
use telemetry::{
    CostKind, CostRecorder, Histogram, Registry, Sink, SloPolicy, Watchdog,
};
use vmem::{Addr, AddrSpace, Segment, PAGE_SIZE, WORD_SIZE};
use workloads::{Op, Profile, Rng, TraceGen};

use crate::cost::CostModel;
use crate::metrics::RunMetrics;
use crate::system::System;

/// A live object as the engine tracks it.
#[derive(Clone, Debug)]
struct Obj {
    base: Addr,
    /// Requested size (what the program may write).
    req: u64,
    /// Allocation-site id from the trace (0 = unknown). Forwarded into
    /// the quarantine so forensics can attribute failed frees.
    site: u32,
    /// Outgoing pointer slots: (byte offset, target id).
    out: Vec<(u64, u64)>,
}

/// A memory slot holding a pointer to some object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    /// Root slot index on the stack.
    Root(u32),
    /// Offset within a live object.
    InObj {
        /// Holder object id.
        id: u64,
        /// Byte offset of the slot.
        off: u64,
    },
}

/// The system under test, instantiated. The baseline variant is unboxed
/// intentionally: it is the hot path and `JAlloc` is a few hundred bytes.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum Sys {
    Base(JAlloc),
    Ms(Box<MineSweeper>),
    Mu(Box<MarkUs>),
    Ff(Box<FfMalloc>),
    ScudoBase(Box<Scudo>),
    MsScudo(Box<MineSweeper<Scudo>>),
    Cr(Box<CrCount>),
    Os(Box<Oscar>),
    Ps(Box<PSweeper>),
    Ds(Box<DangSan>),
}

/// Subsystem label the engine registers its instruments under, alongside
/// the layer's [`minesweeper::LAYER_SUBSYSTEM`] counters in the same
/// registry.
pub const ENGINE_SUBSYSTEM: &str = "engine";

/// Engine-side telemetry: virtual-cycle histograms registered on the
/// layer's shared registry, so one snapshot covers both the allocator
/// layer's counters and the engine's timing distributions.
#[derive(Debug)]
struct EngineTelem {
    /// Cycles the mutator spent blocked per allocation pause / sequential
    /// sweep (the paper's §5.7 pause valve).
    pause_cycles: Histogram,
    /// Stop-the-world re-check cycles charged to the mutator, per sweep.
    stw_cycles: Histogram,
    /// Virtual duration of each completed sweep, start to finish.
    sweep_cycles: Histogram,
    /// `now` at which the in-flight sweep started.
    sweep_start: u64,
}

impl EngineTelem {
    fn register(registry: &Registry) -> Self {
        EngineTelem {
            pause_cycles: registry.histogram(ENGINE_SUBSYSTEM, "pause_cycles"),
            stw_cycles: registry.histogram(ENGINE_SUBSYSTEM, "stw_cycles"),
            sweep_cycles: registry.histogram(ENGINE_SUBSYSTEM, "sweep_cycles"),
            sweep_start: 0,
        }
    }

    /// Stamps the run's helper-thread demand vs. supply and the active
    /// scan-kernel tier into the registry, so a trace from a degraded run
    /// (1 spare core, SWAR fallback) is distinguishable from a genuinely
    /// parallel one without out-of-band context.
    fn stamp_environment(registry: &Registry, requested: u64, effective: u64) {
        registry.counter(ENGINE_SUBSYSTEM, "requested_helpers").add(requested);
        registry.counter(ENGINE_SUBSYSTEM, "effective_helpers").add(effective);
        let tier = minesweeper::simd::active_tier().as_str();
        registry.counter(ENGINE_SUBSYSTEM, &format!("scan_tier_{tier}")).inc();
    }
}

/// Replays one `(profile, system, seed)` run. See the
/// [crate docs](crate) and [`crate::run`].
#[derive(Debug)]
pub struct Engine {
    space: AddrSpace,
    sys: Sys,
    cost: CostModel,
    rng: Rng,
    profile: Profile,
    /// Mutator-visible virtual time.
    now: u64,
    background: u64,
    objects: HashMap<u64, Obj>,
    live_ids: Vec<u64>,
    live_pos: HashMap<u64, usize>,
    incoming: HashMap<u64, Vec<Slot>>,
    root_owner: Vec<Option<(u64, Addr)>>,
    freed_at: HashMap<u64, u64>,
    sweep_active: bool,
    teardown: bool,
    /// Next pSweeper background-sweep time (scaled "1 s" period).
    next_psweep: u64,
    psweep_period: u64,
    metrics: RunMetrics,
    sample_interval: u64,
    next_sample: u64,
    seed: u64,
    /// Present for MineSweeper-layered systems (they own the registry).
    telem: Option<EngineTelem>,
    /// Cost-attribution ledger ([`telemetry::CostRecorder`]) on the same
    /// registry; on by default for layered systems, purely observational
    /// (disabling it never changes verdicts, traces or virtual time).
    cost_rec: Option<CostRecorder>,
    /// Ledger total at the current sweep's start, for the per-generation
    /// `cost/per_sweep_cycles` attribution histogram.
    cost_sweep_start: u64,
    /// Pause-budget SLO objectives checked at finalize
    /// ([`Engine::set_slo_policy`]); breaches emit typed
    /// [`telemetry::EventKind::SloViolation`] trace events.
    slo: Option<SloPolicy>,
}

impl Engine {
    /// Builds an engine for `profile` under `system` with the given trace
    /// seed.
    pub fn new(profile: &Profile, system: System, seed: u64) -> Self {
        let cost = CostModel::desktop();
        // Scale the allocator's 10 s decay window to the (scaled-down)
        // run length so background purging fires a realistic number of
        // times per run.
        let run_cycles = profile.total_allocs.max(1) * profile.cycles_per_alloc.max(1);
        let decay = (run_cycles / 30).clamp(1_000_000, 500_000_000);
        let sys = match system {
            System::Baseline => Sys::Base(JAlloc::with_config(JallocConfig {
                decay_cycles: decay,
                ..JallocConfig::stock()
            })),
            System::MineSweeper(cfg) => {
                let jcfg = if cfg.purge_after_sweep {
                    JallocConfig { decay_cycles: decay, ..JallocConfig::minesweeper() }
                } else {
                    JallocConfig {
                        decay_cycles: decay,
                        end_padding: true,
                        ..JallocConfig::stock()
                    }
                };
                Sys::Ms(Box::new(MineSweeper::with_heap_config(cfg, jcfg)))
            }
            System::MarkUs(cfg) => Sys::Mu(Box::new(MarkUs::new(cfg))),
            System::FfMalloc => Sys::Ff(Box::new(FfMalloc::new(FfConfig::standard()))),
            System::ScudoBaseline => Sys::ScudoBase(Box::new(Scudo::new())),
            System::MineSweeperScudo(cfg) => {
                Sys::MsScudo(Box::new(MineSweeper::with_backend(cfg, Scudo::new())))
            }
            System::CrCount => Sys::Cr(Box::new(CrCount::new())),
            System::Oscar => Sys::Os(Box::new(Oscar::new())),
            System::PSweeper => Sys::Ps(Box::new(PSweeper::new())),
            System::DangSan => Sys::Ds(Box::new(DangSan::new())),
        };
        let telem = match &sys {
            Sys::Ms(ms) => Some(EngineTelem::register(ms.registry())),
            Sys::MsScudo(ms) => Some(EngineTelem::register(ms.registry())),
            _ => None,
        };
        let cost_rec = match &sys {
            Sys::Ms(ms) => Some(CostRecorder::new(ms.registry())),
            Sys::MsScudo(ms) => Some(CostRecorder::new(ms.registry())),
            _ => None,
        };
        // Mirror `sweeper_threads()`: requested = config helpers + main
        // sweeper; effective = clamped by cores spared by the mutator.
        if let Some(requested) = match &sys {
            Sys::Ms(ms) => Some(ms.config().helper_threads as u64 + 1),
            Sys::MsScudo(ms) => Some(ms.config().helper_threads as u64 + 1),
            _ => None,
        } {
            let spare =
                (cost.cores as u64).saturating_sub(profile.threads as u64).max(1);
            let effective = requested.min(spare).max(1);
            let registry = match &sys {
                Sys::Ms(ms) => ms.registry(),
                Sys::MsScudo(ms) => ms.registry(),
                _ => unreachable!(),
            };
            EngineTelem::stamp_environment(registry, requested, effective);
        }
        let sample_interval = (run_cycles / 256).max(10_000);
        let mut metrics = RunMetrics {
            benchmark: profile.name.to_string(),
            system: system.label().to_string(),
            ..RunMetrics::default()
        };
        metrics.rss_series.push((0, 0));
        Engine {
            space: AddrSpace::new(),
            sys,
            cost,
            rng: Rng::new(seed ^ 0x9aa9_0000),
            profile: profile.clone(),
            now: 0,
            background: 0,
            objects: HashMap::new(),
            live_ids: Vec::new(),
            live_pos: HashMap::new(),
            incoming: HashMap::new(),
            root_owner: vec![None; profile.root_slots as usize],
            freed_at: HashMap::new(),
            sweep_active: false,
            teardown: false,
            next_psweep: (run_cycles / 32).max(100_000),
            psweep_period: (run_cycles / 32).max(100_000),
            metrics,
            sample_interval,
            next_sample: sample_interval,
            seed,
            telem,
            cost_rec,
            cost_sweep_start: 0,
            slo: None,
        }
    }

    /// Turns the cost-attribution ledger on or off. It is on by default
    /// for layered systems; turning it off stops all `cost/*` counter
    /// traffic (the run is otherwise bit-identical — the ledger only
    /// observes charges, it never changes them). No-op for baselines.
    pub fn set_cost_ledger(&mut self, on: bool) {
        if !on {
            self.cost_rec = None;
        } else if self.cost_rec.is_none() {
            self.cost_rec = match &self.sys {
                Sys::Ms(ms) => Some(CostRecorder::new(ms.registry())),
                Sys::MsScudo(ms) => Some(CostRecorder::new(ms.registry())),
                _ => None,
            };
        }
    }

    /// Self-test leak injection: skip `kind`'s per-kind counter on every
    /// future charge (histogram and total still accumulate), so
    /// `ms-report --costs --check` must fail naming exactly that kind.
    pub fn set_cost_drop(&mut self, kind: CostKind) {
        if let Some(rec) = &mut self.cost_rec {
            rec.set_drop(Some(kind));
        }
    }

    fn record_cost(&mut self, kind: CostKind, cycles: u64, site: Option<u32>) {
        if let Some(rec) = &mut self.cost_rec {
            rec.charge(kind, cycles, site, None);
        }
    }

    /// Arms the SLO watchdog: at finalize the run's registry snapshot is
    /// evaluated against `policy` and every breached objective emits a
    /// typed [`telemetry::EventKind::SloViolation`] through the attached
    /// trace sink. No-op for systems without a registry (baselines).
    pub fn set_slo_policy(&mut self, policy: SloPolicy) {
        self.slo = Some(policy);
    }

    /// Attaches `sink` to the layered system's sweep tracer, so the run
    /// emits lifecycle events ([`telemetry::EventKind`]) stamped with the
    /// engine's virtual clock. With `deterministic` set, wall-clock
    /// durations in events are zeroed so identically seeded runs produce
    /// byte-identical traces.
    ///
    /// Returns `false` (and drops the sink) when the system under test has
    /// no tracer (baselines).
    pub fn set_trace_sink(&mut self, sink: Box<dyn Sink>, deterministic: bool) -> bool {
        let tracer = match &mut self.sys {
            Sys::Ms(ms) => ms.tracer_mut(),
            Sys::MsScudo(ms) => ms.tracer_mut(),
            _ => return false,
        };
        tracer.set_sink(sink);
        tracer.set_deterministic(deterministic);
        true
    }

    /// Runs the profile's generated trace to completion and returns the
    /// metrics.
    pub fn run(self) -> RunMetrics {
        let trace = TraceGen::new(&self.profile, self.seed);
        self.run_ops(trace)
    }

    /// Replays an explicit op stream (e.g. a recorded trace,
    /// [`workloads::recorded`]) instead of the generated one. The profile
    /// still supplies the pointer-graph knobs (density, dangling rate,
    /// roots) and the cost-model scaling.
    pub fn run_ops(mut self, ops: impl IntoIterator<Item = Op>) -> RunMetrics {
        for op in ops {
            match op {
                Op::Work(c) => {
                    // CRCount taxes pointer-write-heavy compute: the
                    // engine's pointer graph only covers initialisation
                    // stores, so the steady-state instrumented stores are
                    // charged proportionally to the profile's pointer
                    // density (§6.6's mcf/povray effect).
                    let tax = match self.sys {
                        Sys::Cr(_) => self.cost.crcount_work_tax,
                        Sys::Ds(_) => self.cost.dangsan_work_tax,
                        _ => 0.0,
                    };
                    let c = c + (c as f64 * tax * self.profile.ptr_density.min(1.0)) as u64;
                    self.charge_mutator(c)
                }
                Op::Alloc { id, size, site } => self.do_alloc(id, size, site),
                Op::Free { id } => self.do_free(id),
                Op::Teardown => self.teardown = true,
            }
            if !self.teardown {
                self.housekeep();
            }
        }
        self.finish_run()
    }

    fn finish_run(mut self) -> RunMetrics {
        // If a sweep is still in flight at exit, let it land (the process
        // would normally just exit; finishing keeps accounting closed).
        if self.sweep_active {
            self.fast_forward_sweep(false);
        }
        self.finalize()
    }

    // ---- time accounting -------------------------------------------------

    /// Effective concurrent sweeper threads: capped by spare cores.
    fn sweeper_threads(&self) -> u64 {
        let helpers = match &self.sys {
            Sys::Ms(ms) => ms.config().helper_threads as u64 + 1,
            Sys::MsScudo(ms) => ms.config().helper_threads as u64 + 1,
            Sys::Mu(_) => 2,
            _ => 0,
        };
        let spare =
            (self.cost.cores as u64).saturating_sub(self.profile.threads as u64).max(1);
        helpers.min(spare).max(1)
    }

    /// Contention factor on mutator work while sweepers are running.
    fn contention(&self) -> f64 {
        if !self.sweep_active {
            return 1.0;
        }
        let demand = self.profile.threads as u64 + self.sweeper_threads();
        if demand <= self.cost.cores as u64 {
            1.0
        } else {
            demand as f64 / self.cost.cores as f64
        }
    }

    /// Charges mutator-visible cycles and advances any concurrent sweep by
    /// the same wall time.
    fn charge_mutator(&mut self, cycles: u64) {
        let effective = (cycles as f64 * self.contention()) as u64;
        self.now += effective;
        if self.sweep_active {
            self.progress_sweep(effective);
        }
        self.sample();
    }

    /// Charges cycles to background threads.
    fn charge_background(&mut self, cycles: u64) {
        self.background += cycles;
    }

    fn sample(&mut self) {
        while self.now >= self.next_sample {
            let rss = self.space.rss_bytes() + self.metadata_bytes();
            self.metrics.peak_rss = self.metrics.peak_rss.max(rss);
            self.metrics.rss_series.push((self.next_sample, rss));
            self.next_sample += self.sample_interval;
            // Allocator decay purging rides the sample clock.
            match &mut self.sys {
                Sys::Base(heap) => {
                    heap.advance_clock(self.now);
                    heap.purge_aged(&mut self.space);
                }
                Sys::Ms(ms) => {
                    ms.advance_clock(self.now);
                    ms.decay_purge(&mut self.space);
                }
                Sys::Mu(mu) => mu.advance_clock(self.now),
                Sys::Ff(_) => {}
                Sys::ScudoBase(heap) => {
                    heap.advance_clock(self.now);
                    // Scudo releases free pages opportunistically.
                    heap.release_to_os(&mut self.space);
                }
                Sys::MsScudo(ms) => ms.advance_clock(self.now),
                Sys::Cr(cr) => {
                    cr.advance_clock(self.now);
                    cr.purge_aged(&mut self.space);
                }
                Sys::Os(_) => {}
                Sys::Ps(ps) => {
                    ps.advance_clock(self.now);
                    ps.purge_aged(&mut self.space);
                }
                Sys::Ds(ds) => {
                    ds.advance_clock(self.now);
                    ds.purge_aged(&mut self.space);
                }
            }
            // pSweeper's background thread wakes on its fixed period.
            if self.now >= self.next_psweep {
                self.next_psweep = self.now + self.psweep_period;
                if let Sys::Ps(ps) = &mut self.sys {
                    if !self.teardown {
                        let report = ps.sweep(&mut self.space);
                        let scan = report.slots_scanned * self.cost.psweeper_slot_scan
                            + report.released * self.cost.release_entry;
                        // Concurrent thread; a thin slice of interference
                        // reaches the mutator (nullification stores).
                        self.now += report.nullified * 20;
                        self.background += scan;
                        self.metrics.sweeps += 1;
                    }
                }
            }
        }
    }

    /// Mitigation metadata resident alongside the heap (quarantine lists,
    /// dedup sets; the shadow map is transient per sweep).
    fn metadata_bytes(&self) -> u64 {
        match &self.sys {
            Sys::Base(_) => 0,
            Sys::Ms(ms) => ms.quarantine().len() as u64 * 64,
            Sys::Mu(mu) => mu.quarantine_len() as u64 * 64,
            Sys::Ff(ff) => ff.live_allocations() as u64 * 48,
            Sys::ScudoBase(_) => 0,
            Sys::MsScudo(ms) => ms.quarantine().len() as u64 * 64,
            Sys::Cr(cr) => cr.pending() as u64 * 48,
            // Oscar's page tables only ever grow: one PTE per alias ever
            // created, plus the out-of-line object map.
            Sys::Os(os) => {
                os.stats().aliases_created * 8 + os.live_allocations() as u64 * 40
            }
            Sys::Ps(ps) => ps.tracked_ptrs() as u64 * 8 + ps.pending() as u64 * 16,
            Sys::Ds(ds) => ds.stats().log_bytes,
        }
    }

    // ---- allocation ------------------------------------------------------

    fn do_alloc(&mut self, id: u64, size: u64, site: u32) {
        self.metrics.allocs += 1;
        // Pause valve: an overloaded sweep blocks new allocations (§5.7).
        let pause = match &self.sys {
            Sys::Ms(ms) => ms.pause_needed(),
            Sys::MsScudo(ms) => ms.pause_needed(),
            _ => false,
        };
        if pause {
            self.fast_forward_sweep(true);
        }
        let cost = self.cost;
        let (base, alloc_cost) = match &mut self.sys {
            Sys::Base(heap) => {
                let s0 = *heap.stats();
                let base = heap.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, heap.stats()))
            }
            Sys::Ms(ms) => {
                let s0 = *ms.heap().stats();
                let base = ms.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, ms.heap().stats()))
            }
            Sys::Mu(mu) => {
                let s0 = *mu.heap().stats();
                let base = mu.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, mu.heap().stats()) + cost.markus_malloc_extra)
            }
            Sys::Ff(ff) => {
                let base = ff.malloc(&mut self.space, size);
                (base, cost.ff_malloc)
            }
            Sys::ScudoBase(heap) => {
                let base = heap.allocate(&mut self.space, size);
                (base, cost.scudo_malloc)
            }
            Sys::MsScudo(ms) => {
                let base = ms.malloc(&mut self.space, size);
                (base, cost.scudo_malloc)
            }
            Sys::Cr(cr) => {
                let s0 = *cr.heap().stats();
                let base = cr.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, cr.heap().stats()))
            }
            Sys::Os(os) => {
                let base = os.malloc(&mut self.space, size);
                (base, cost.oscar_malloc_syscall)
            }
            Sys::Ps(ps) => {
                let s0 = *ps.heap().stats();
                let base = ps.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, ps.heap().stats()))
            }
            Sys::Ds(ds) => {
                let s0 = *ds.heap().stats();
                let base = ds.malloc(&mut self.space, size);
                (base, malloc_cost(&cost, &s0, ds.heap().stats()))
            }
        };
        // Delay-of-reuse cache penalty, scaled by how much the benchmark
        // depends on hot reuse. Three cases:
        //  * warm — the base was freed moments ago (tcache-style LIFO
        //    reuse): free.
        //  * stale reuse — recycled long after it went cold (quarantine's
        //    signature effect): full cold cost.
        //  * fresh — never recycled: cold, but bump cursors and fresh slab
        //    carves stream in address order, so the prefetcher discounts it
        //    (this is also why FFmalloc's always-fresh memory stays cheap).
        let sens = self.profile.cache_sensitivity;
        let cold_cost = match self.freed_at.remove(&base.raw()) {
            Some(t) if self.now.saturating_sub(t) < self.cost.warm_window => 0,
            Some(_) => (self.cost.cold_cost(size) as f64 * sens) as u64,
            None => (self.cost.cold_cost(size) as f64 * sens * self.cost.fresh_locality)
                as u64,
        };
        self.charge_mutator(alloc_cost + cold_cost);

        // Touch every page (commit; programs initialise their objects).
        let mut page = base.align_down(PAGE_SIZE as u64);
        if page < base {
            page = page.add_bytes(PAGE_SIZE as u64);
        }
        self.space.write_word(base, self.rng.next_u64() | 1).ok();
        while page < base.add_bytes(size) {
            if page > base {
                self.space.write_word(page, self.rng.next_u64() | 1).ok();
            }
            page = page.add_bytes(PAGE_SIZE as u64);
        }

        let mut obj = Obj { base, req: size, site, out: Vec::new() };
        // Pointer wiring per the profile's density.
        let slots_f = self.profile.ptr_density * size as f64 / 64.0;
        let mut k = slots_f as u64;
        if self.rng.chance(slots_f.fract()) {
            k += 1;
        }
        let mut cr_writes = 0u64;
        let mut instr_writes = 0u64;
        for _ in 0..k.min(size / WORD_SIZE as u64) {
            let Some(&target) = pick(&mut self.rng, &self.live_ids) else { break };
            let t_obj = &self.objects[&target];
            let t_base = t_obj.base;
            let off = self.rng.below((size / 8).max(1)) * 8;
            let interior = if self.rng.chance(0.2) && t_obj.req > 16 {
                self.rng.below(t_obj.req / 8) * 8
            } else {
                0
            };
            let value = t_base.add_bytes(interior);
            if self.space.write_word(base.add_bytes(off), value.raw()).is_ok() {
                obj.out.push((off, target));
                self.incoming.entry(target).or_default().push(Slot::InObj { id, off });
                let slot_addr = base.add_bytes(off);
                match &mut self.sys {
                    Sys::Cr(cr) => {
                        cr.inc_ref(t_base);
                        cr_writes += 1;
                    }
                    Sys::Ps(ps) => {
                        ps.register_ptr(slot_addr);
                        instr_writes += 1;
                    }
                    Sys::Ds(ds) => {
                        ds.note_ptr_store(t_base, slot_addr);
                        instr_writes += 1;
                    }
                    _ => {}
                }
            }
        }
        // A "false pointer": plain data that happens to equal a heap
        // address (Figure 4). Untracked — never erased.
        if self.rng.chance(self.profile.false_ptr_rate) {
            if let Some(&target) = pick(&mut self.rng, &self.live_ids) {
                let off = self.rng.below((size / 8).max(1)) * 8;
                let value = self.objects[&target].base.raw();
                self.space.write_word(base.add_bytes(off), value).ok();
            }
        }

        // Root the object (rotating root-slot assignment keeps a live
        // root set for sweeps to scan).
        if !self.root_owner.is_empty() {
            let r = (id % self.root_owner.len() as u64) as u32;
            self.clear_root(r);
            let slot_addr = self.root_addr(r);
            self.space.write_word(slot_addr, base.raw()).expect("stack is mapped");
            self.incoming.entry(id).or_default().push(Slot::Root(r));
            self.root_owner[r as usize] = Some((id, base));
            match &mut self.sys {
                Sys::Cr(cr) => {
                    cr.inc_ref(base);
                    cr_writes += 1;
                }
                Sys::Ps(ps) => {
                    ps.register_ptr(slot_addr);
                    instr_writes += 1;
                }
                Sys::Ds(ds) => {
                    ds.note_ptr_store(base, slot_addr);
                    instr_writes += 1;
                }
                _ => {}
            }
        }
        if cr_writes > 0 {
            self.charge_mutator(cr_writes * self.cost.crcount_ptr_write);
        }
        if instr_writes > 0 {
            let per = match &self.sys {
                Sys::Ps(_) => self.cost.psweeper_register,
                Sys::Ds(_) => self.cost.dangsan_log_append,
                _ => 0,
            };
            self.charge_mutator(instr_writes * per);
        }

        self.objects.insert(id, obj);
        self.live_pos.insert(id, self.live_ids.len());
        self.live_ids.push(id);
    }

    fn root_addr(&self, r: u32) -> Addr {
        self.space.layout().segment_base(Segment::Stack) + r as u64 * 8
    }

    fn clear_root(&mut self, r: u32) {
        if let Some((old, old_base)) = self.root_owner[r as usize].take() {
            if let Some(list) = self.incoming.get_mut(&old) {
                list.retain(|s| *s != Slot::Root(r));
            }
            // Overwriting a pointer is an instrumented store under CRCount
            // (this is how dangling-root references eventually drain).
            if let Sys::Cr(cr) = &mut self.sys {
                cr.dec_ref(&mut self.space, old_base);
            }
        }
        // The slot itself is overwritten by the caller (or zeroed here).
        self.space.write_word(self.root_addr(r), 0).expect("stack is mapped");
    }

    // ---- free ------------------------------------------------------------

    fn do_free(&mut self, id: u64) {
        self.metrics.frees += 1;
        let obj = self.objects.remove(&id).expect("trace frees live ids once");
        // Program behaviour: erase (most) references to the dying object.
        let mut cr_writes = 0u64;
        if let Some(slots) = self.incoming.remove(&id) {
            for slot in slots {
                let dangle = self.rng.chance(self.profile.dangling_rate);
                if !dangle {
                    // Erasing a reference is an instrumented store.
                    if let Sys::Cr(cr) = &mut self.sys {
                        cr.dec_ref(&mut self.space, obj.base);
                        cr_writes += 1;
                    }
                }
                match slot {
                    Slot::Root(r) => {
                        if !dangle {
                            self.space.write_word(self.root_addr(r), 0).expect("stack");
                            self.root_owner[r as usize] = None;
                        }
                        // If dangling: the stale root pointer stays until
                        // the slot is recycled — a genuine dangling pointer
                        // the sweep must find.
                    }
                    Slot::InObj { id: holder, off } => {
                        if !dangle {
                            if let Some(h) = self.objects.get_mut(&holder) {
                                self.space
                                    .write_word(h.base.add_bytes(off), 0)
                                    .ok();
                                h.out.retain(|&(o, t)| !(o == off && t == id));
                            }
                        }
                    }
                }
            }
        }
        // The dying object's own outgoing slots stop being app references,
        // and destructors usually clear the member pointers themselves
        // (~85% of the time) before the memory is freed — without this,
        // stale pointers inside non-zeroed quarantined objects (MarkUs,
        // MineSweeper-without-zeroing) pin whatever later occupies the
        // pointed-to addresses, cascading retention far beyond reality.
        for (off, target) in &obj.out {
            if let Some(list) = self.incoming.get_mut(target) {
                list.retain(|s| *s != Slot::InObj { id, off: *off });
            }
            if self.rng.chance(0.85) {
                self.space.write_word(obj.base.add_bytes(*off), 0).ok();
            }
            // CRCount's zero-fill on free invalidates every outgoing
            // reference exactly once, whatever the destructors did;
            // pSweeper's table drops the dead holder's slots.
            match &mut self.sys {
                Sys::Cr(cr) => {
                    if let Some(t) = self.objects.get(target) {
                        cr.dec_ref(&mut self.space, t.base);
                        cr_writes += 1;
                    }
                }
                Sys::Ps(ps) => ps.unregister_ptr(obj.base.add_bytes(*off)),
                _ => {}
            }
        }
        // Live-list swap-remove.
        let pos = self.live_pos.remove(&id).expect("live");
        let last = self.live_ids.pop().expect("non-empty");
        if last != id {
            self.live_ids[pos] = last;
            self.live_pos.insert(last, pos);
        }
        self.freed_at.insert(obj.base.raw(), self.now);

        // Hand the allocation to the system under test, charging costs.
        match &mut self.sys {
            Sys::Base(heap) => {
                heap.free(&mut self.space, obj.base).expect("live allocation");
                self.charge_mutator(self.cost.free_fast);
            }
            Sys::Ms(ms) => {
                ms.tracer_mut().set_virtual_now(self.now);
                let st0 = ms.stats();
                let outcome = ms.free_sited(&mut self.space, obj.base, obj.site);
                debug_assert_eq!(outcome, FreeOutcome::Quarantined);
                let st = ms.stats();
                let zeroing = self.cost.zero_cost(st.zeroed_bytes - st0.zeroed_bytes);
                let mut quarantine = self.cost.quarantine_insert;
                if st.unmapped_pages > st0.unmapped_pages {
                    quarantine += self.cost.unmap_syscall;
                }
                if st.tl_flushes > st0.tl_flushes {
                    quarantine += ms.config().tl_buffer_capacity as u64
                        * self.cost.quarantine_flush_per_entry;
                }
                self.record_cost(CostKind::Zeroing, zeroing, Some(obj.site));
                self.record_cost(CostKind::Quarantine, quarantine, Some(obj.site));
                self.charge_mutator(zeroing + quarantine);
            }
            Sys::Mu(mu) => {
                let p0 = mu.stats().unmapped_pages;
                let outcome = mu.free(&mut self.space, obj.base);
                debug_assert_eq!(outcome, MarkUsFreeOutcome::Quarantined);
                let mut c = self.cost.quarantine_insert + self.cost.markus_free_extra;
                if mu.stats().unmapped_pages > p0 {
                    c += self.cost.unmap_syscall;
                }
                self.charge_mutator(c);
            }
            Sys::Ff(ff) => {
                let report = ff.free(&mut self.space, obj.base).expect("live");
                let mut c = self.cost.ff_free;
                if report.pages_released > 0 {
                    c += self.cost.unmap_syscall;
                }
                self.charge_mutator(c);
            }
            Sys::ScudoBase(heap) => {
                heap.deallocate(&mut self.space, obj.base).expect("live allocation");
                self.charge_mutator(self.cost.scudo_free);
            }
            Sys::MsScudo(ms) => {
                ms.tracer_mut().set_virtual_now(self.now);
                let st0 = ms.stats();
                let outcome = ms.free_sited(&mut self.space, obj.base, obj.site);
                debug_assert_eq!(outcome, FreeOutcome::Quarantined);
                let st = ms.stats();
                let zeroing = self.cost.zero_cost(st.zeroed_bytes - st0.zeroed_bytes);
                let mut quarantine = self.cost.quarantine_insert;
                if st.unmapped_pages > st0.unmapped_pages {
                    quarantine += self.cost.unmap_syscall;
                }
                if st.tl_flushes > st0.tl_flushes {
                    quarantine += ms.config().tl_buffer_capacity as u64
                        * self.cost.quarantine_flush_per_entry;
                }
                // The Scudo substrate's own free-path share is allocator
                // cost, not defence cost: charged, never attributed.
                self.record_cost(CostKind::Zeroing, zeroing, Some(obj.site));
                self.record_cost(CostKind::Quarantine, quarantine, Some(obj.site));
                self.charge_mutator(zeroing + quarantine + self.cost.scudo_free / 4);
            }
            Sys::Cr(cr) => {
                let usable = cr.usable_size(obj.base).expect("live allocation");
                let outcome = cr.free(&mut self.space, obj.base);
                debug_assert_ne!(outcome, CrFreeOutcome::Invalid);
                self.charge_mutator(
                    self.cost.free_fast
                        + self.cost.zero_cost(usable)
                        + cr_writes * self.cost.crcount_ptr_write,
                );
            }
            Sys::Os(os) => {
                os.free(&mut self.space, obj.base).expect("live allocation");
                self.charge_mutator(self.cost.oscar_free_syscall);
            }
            Sys::Ps(ps) => {
                let outcome = ps.free(&mut self.space, obj.base);
                debug_assert_eq!(outcome, PsFreeOutcome::Deferred);
                self.charge_mutator(self.cost.free_fast);
            }
            Sys::Ds(ds) => {
                let outcome = ds.free(&mut self.space, obj.base);
                let DsFreeOutcome::Released { log_entries, nullified } = outcome else {
                    unreachable!("engine frees live ids once");
                };
                self.charge_mutator(
                    self.cost.free_fast
                        + log_entries * self.cost.dangsan_log_walk
                        + nullified * 10,
                );
            }
        }
        if cr_writes > 0 && !matches!(self.sys, Sys::Cr(_)) {
            // cr_writes stays zero for every other system; keep the
            // compiler honest about the accumulator.
            debug_assert_eq!(cr_writes, 0);
        }
    }

    // ---- sweep orchestration ----------------------------------------------

    fn housekeep(&mut self) {
        match &mut self.sys {
            Sys::Ms(ms)
                if !self.sweep_active && ms.sweep_needed(&self.space) => {
                    ms.tracer_mut().set_virtual_now(self.now);
                    ms.start_sweep(&mut self.space);
                    self.sweep_active = true;
                    if let Some(t) = &mut self.telem {
                        t.sweep_start = self.now;
                    }
                    self.cost_sweep_start =
                        self.cost_rec.as_ref().map_or(0, CostRecorder::total);
                    if !ms.config().concurrent {
                        // Sequential version: the whole sweep runs in the
                        // mutator (§5.4).
                        self.fast_forward_sweep(true);
                    }
                }
            Sys::MsScudo(ms)
                if !self.sweep_active && ms.sweep_needed(&self.space) => {
                    ms.tracer_mut().set_virtual_now(self.now);
                    ms.start_sweep(&mut self.space);
                    self.sweep_active = true;
                    if let Some(t) = &mut self.telem {
                        t.sweep_start = self.now;
                    }
                    self.cost_sweep_start =
                        self.cost_rec.as_ref().map_or(0, CostRecorder::total);
                    if !ms.config().concurrent {
                        self.fast_forward_sweep(true);
                    }
                }
            Sys::Mu(mu)
                if mu.gc_needed() => {
                    let dc0 = self.space.stats().demand_commits;
                    let report = mu.collect(&mut self.space);
                    let dcs = self.space.stats().demand_commits - dc0;
                    // Bytes stream near linear-sweep speed; the transitive
                    // pass pays its pointer-chase penalty per visited node.
                    let scan_cycles = report.scanned_words * WORD_SIZE as u64
                        / self.cost.sweep_bytes_per_cycle
                        + report.marked_objects * self.cost.mark_object_visit
                        + dcs * self.cost.demand_commit;
                    // MarkUs marking is mostly parallel with stop-the-world
                    // phases and allocation stalls: roughly half the scan
                    // lands on the application's critical path, the rest on
                    // background threads.
                    let stw = scan_cycles / 2 / self.sweeper_threads();
                    self.now += stw;
                    self.metrics.stw_cycles += stw;
                    self.charge_background(
                        scan_cycles / 2 + report.released * self.cost.release_entry,
                    );
                    self.metrics.sweeps += 1;
                    self.metrics.failed_frees += report.retained;
                    self.sample();
                }
            _ => {}
        }
    }

    /// Advances an in-flight sweep by `wall` cycles of real time.
    fn progress_sweep(&mut self, wall: u64) {
        let cost = self.cost;
        let cores = self.cost.cores as u64;
        let mut_threads = self.profile.threads as u64;
        let space = &mut self.space;
        let metrics = &mut self.metrics;
        let background = &mut self.background;
        let rec = self.cost_rec.as_mut();
        let finished = match &mut self.sys {
            Sys::Ms(ms) => progress_one(
                ms, space, metrics, background, rec, &cost, cores, mut_threads, wall,
            ),
            Sys::MsScudo(ms) => progress_one(
                ms, space, metrics, background, rec, &cost, cores, mut_threads, wall,
            ),
            _ => return,
        };
        if finished {
            self.finish_sweep();
        }
    }

    /// Runs the in-flight sweep to completion immediately. When `blocking`
    /// the mutator waits for it (allocation pause / sequential mode).
    fn fast_forward_sweep(&mut self, blocking: bool) {
        let cost = self.cost;
        let cores = self.cost.cores as u64;
        let mut_threads = self.profile.threads as u64;
        if !self.sweep_active {
            return;
        }
        let (wall, dcs) = match &mut self.sys {
            Sys::Ms(ms) => {
                fast_forward_one(ms, &mut self.space, &cost, cores, mut_threads)
            }
            Sys::MsScudo(ms) => {
                fast_forward_one(ms, &mut self.space, &cost, cores, mut_threads)
            }
            _ => return,
        };
        self.metrics.sweep_demand_commits += dcs;
        // Attribution: the drained mark bill (background) lands on
        // MarkScan wholesale — fast-forward collapses the skip/forensics
        // detail into one wall figure — the blocking stall on Stw, and
        // demand commits on Commit. The amounts recorded are exactly the
        // amounts charged below.
        let mark_bill = wall * self.sweeper_threads();
        let commit = dcs * self.cost.demand_commit;
        self.record_cost(CostKind::MarkScan, mark_bill, None);
        self.record_cost(CostKind::Commit, commit, None);
        if blocking {
            self.record_cost(CostKind::Stw, wall, None);
            self.now += wall + commit;
            self.metrics.pause_cycles += wall;
            if let Some(t) = &self.telem {
                t.pause_cycles.record(wall);
            }
            self.background += mark_bill;
        } else {
            self.background += mark_bill + commit;
        }
        self.finish_sweep();
    }

    fn finish_sweep(&mut self) {
        let (report, purged, concurrent) = match &mut self.sys {
            Sys::Ms(ms) => {
                ms.tracer_mut().set_virtual_now(self.now);
                let purged0 = ms.heap().stats().purged_pages;
                let concurrent = ms.config().concurrent;
                let report = ms.finish_sweep(&mut self.space);
                (report, ms.heap().stats().purged_pages - purged0, concurrent)
            }
            Sys::MsScudo(ms) => {
                ms.tracer_mut().set_virtual_now(self.now);
                let purged0 = ms.heap().stats().released_pages;
                let concurrent = ms.config().concurrent;
                let report = ms.finish_sweep(&mut self.space);
                (report, ms.heap().stats().released_pages - purged0, concurrent)
            }
            _ => return,
        };
        // Stop-the-world re-check hits the mutator.
        let stw = report.stw_pages * self.cost.stw_page;
        self.record_cost(CostKind::Stw, stw, None);
        self.now += stw;
        self.metrics.stw_cycles += stw;
        if let Some(t) = &self.telem {
            if stw > 0 {
                t.stw_cycles.record(stw);
            }
            t.sweep_cycles.record(self.now.saturating_sub(t.sweep_start));
        }
        // Release + purge work.
        let finish_cost =
            report.released * self.cost.release_entry + purged * self.cost.purge_page;
        self.record_cost(CostKind::Release, finish_cost, None);
        if concurrent {
            self.background += finish_cost;
        } else {
            self.now += finish_cost;
        }
        self.metrics.sweeps += 1;
        self.metrics.failed_frees += report.failed;
        self.sweep_active = false;
        // Close the generation's attribution window.
        if let Some(rec) = &self.cost_rec {
            rec.record_sweep(rec.total().saturating_sub(self.cost_sweep_start));
        }
        self.sample();
    }

    fn finalize(mut self) -> RunMetrics {
        // Close the RSS series at the final time.
        let rss = self.space.rss_bytes() + self.metadata_bytes();
        self.metrics.peak_rss = self.metrics.peak_rss.max(rss);
        self.metrics.rss_series.push((self.now.max(1), rss));
        self.metrics.mutator_cycles = self.now.max(1);
        self.metrics.background_cycles = self.background;
        // Export telemetry: flush any attached trace sink, snapshot the
        // shared registry, and derive the headline sweep metrics from the
        // layer's counters (single source of truth).
        // SLO watchdog: evaluate the final snapshot before the flush so
        // violation events land in the same trace as the sweeps they
        // indict.
        let watchdog = self.slo.take().map(Watchdog::new);
        let snap = match &mut self.sys {
            Sys::Ms(ms) => {
                if let Some(w) = &watchdog {
                    let checks = w.evaluate(&ms.registry().snapshot());
                    Watchdog::emit_violations(ms.tracer_mut(), &checks);
                }
                ms.tracer_mut().flush();
                Some(ms.registry().snapshot())
            }
            Sys::MsScudo(ms) => {
                if let Some(w) = &watchdog {
                    let checks = w.evaluate(&ms.registry().snapshot());
                    Watchdog::emit_violations(ms.tracer_mut(), &checks);
                }
                ms.tracer_mut().flush();
                Some(ms.registry().snapshot())
            }
            _ => None,
        };
        if let Some(snap) = snap {
            self.metrics.sweeps = snap.counter(LAYER_SUBSYSTEM, "sweeps").unwrap_or(0);
            self.metrics.failed_frees =
                snap.counter(LAYER_SUBSYSTEM, "failed_frees").unwrap_or(0);
            self.metrics.telemetry = Some(snap);
        }
        self.metrics
    }
}

/// Advances one layered system's in-flight sweep by `wall` cycles.
/// Returns whether marking finished.
#[allow(clippy::too_many_arguments)]
fn progress_one<B: HeapBackend>(
    ms: &mut MineSweeper<B>,
    space: &mut AddrSpace,
    metrics: &mut RunMetrics,
    background: &mut u64,
    cost_rec: Option<&mut CostRecorder>,
    cost: &CostModel,
    cores: u64,
    mutator_threads: u64,
    wall: u64,
) -> bool {
    let helpers = ms.config().helper_threads as u64 + 1;
    let spare = cores.saturating_sub(mutator_threads).max(1);
    let threads = helpers.min(spare).max(1);
    let budget_words = wall * cost.sweep_words_per_cycle() * threads;
    if budget_words == 0 {
        return false;
    }
    let dc0 = space.stats().demand_commits;
    let r = ms.sweep_step(space, budget_words);
    let dcs = space.stats().demand_commits - dc0;
    metrics.sweep_demand_commits += dcs;
    // Skipped pages (incremental sweep) advance the cursor without the
    // word-by-word re-read; they cost a flat per-page lookup instead.
    let (scan, skip) =
        cost.mark_cost_parts(r.bytes - r.skipped_bytes, r.skipped_bytes, r.heap_words);
    let forensics = r.pin_edges * cost.forensics_edge;
    let commit = dcs * cost.demand_commit;
    if let Some(rec) = cost_rec {
        rec.charge(CostKind::MarkScan, scan, None, None);
        rec.charge(CostKind::SkipReplay, skip, None, None);
        rec.charge(CostKind::Forensics, forensics, None, None);
        rec.charge(CostKind::Commit, commit, None, None);
    }
    *background += scan + skip + forensics + commit;
    r.finished
}

/// Drains one layered system's in-flight marking completely. Returns the
/// wall time the drain would have taken and the demand commits incurred.
fn fast_forward_one<B: HeapBackend>(
    ms: &mut MineSweeper<B>,
    space: &mut AddrSpace,
    cost: &CostModel,
    cores: u64,
    mutator_threads: u64,
) -> (u64, u64) {
    let threads = if ms.config().concurrent {
        let helpers = ms.config().helper_threads as u64 + 1;
        let spare = cores.saturating_sub(mutator_threads).max(1);
        helpers.min(spare).max(1)
    } else {
        1
    };
    let dc0 = space.stats().demand_commits;
    let r = ms.sweep_step(space, u64::MAX);
    debug_assert!(r.finished);
    // Derive the wall time from what the drain actually did: skipped
    // pages (incremental sweep) cost a flat per-page lookup, not the
    // streaming re-read.
    let wall = (cost.mark_cost(r.bytes - r.skipped_bytes, r.skipped_bytes, r.heap_words)
        + r.pin_edges * cost.forensics_edge)
        / threads.max(1);
    (wall, space.stats().demand_commits - dc0)
}

/// Classifies a malloc call (tcache hit / arena / fresh mapping) from
/// allocator stats deltas and returns its cycle cost.
fn malloc_cost(
    cost: &CostModel,
    before: &jalloc::AllocStats,
    after: &jalloc::AllocStats,
) -> u64 {
    if after.tcache_hits > before.tcache_hits {
        cost.malloc_fast
    } else if after.fresh_maps > before.fresh_maps
        || after.slabs_created > before.slabs_created
    {
        cost.malloc_fresh
    } else {
        cost.malloc_slow
    }
}

/// Picks a uniformly random element.
fn pick<'a>(rng: &mut Rng, xs: &'a [u64]) -> Option<&'a u64> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.below(xs.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use minesweeper::MsConfig;
    use workloads::{LifetimeDist, SizeDist};

    fn fast_profile() -> Profile {
        Profile {
            total_allocs: 4_000,
            cycles_per_alloc: 300,
            size_dist: SizeDist::LogNormal { median: 64, sigma: 2.5, cap: 64 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.9, LifetimeDist::Exp(100.0)),
                (0.1, LifetimeDist::Exp(1_500.0)),
            ]),
            ..Profile::demo()
        }
    }

    #[test]
    fn baseline_run_completes_and_balances() {
        let m = run(&fast_profile(), System::Baseline, 1);
        assert_eq!(m.allocs, 4_000);
        assert_eq!(m.frees, 4_000, "teardown frees everything");
        assert_eq!(m.sweeps, 0);
        assert!(m.mutator_cycles > 0);
        assert_eq!(m.background_cycles, 0, "baseline has no helper threads");
    }

    #[test]
    fn identical_seeds_are_bit_reproducible() {
        let a = run(&fast_profile(), System::minesweeper_default(), 7);
        let b = run(&fast_profile(), System::minesweeper_default(), 7);
        assert_eq!(a.mutator_cycles, b.mutator_cycles);
        assert_eq!(a.rss_series, b.rss_series);
        assert_eq!(a.sweeps, b.sweeps);
    }

    #[test]
    fn minesweeper_sweeps_and_stays_close_to_baseline() {
        let base = run(&fast_profile(), System::Baseline, 3);
        let ms = run(&fast_profile(), System::minesweeper_default(), 3);
        assert!(ms.sweeps > 0, "allocation churn must trigger sweeps");
        let slowdown = ms.slowdown_vs(&base);
        assert!(slowdown >= 1.0, "mitigation cannot be faster: {slowdown}");
        assert!(slowdown < 2.0, "demo workload slowdown out of range: {slowdown}");
        assert!(ms.cpu_utilisation() > 1.0, "sweeper threads burn CPU");
    }

    #[test]
    fn markus_collects_and_costs_more_than_minesweeper() {
        let base = run(&fast_profile(), System::Baseline, 3);
        let mu = run(&fast_profile(), System::markus_default(), 3);
        let ms = run(&fast_profile(), System::minesweeper_default(), 3);
        assert!(mu.sweeps > 0, "collections must trigger");
        assert!(
            mu.slowdown_vs(&base) >= ms.slowdown_vs(&base) * 0.95,
            "transitive marking should not beat the linear sweep: markus {} ms {}",
            mu.slowdown_vs(&base),
            ms.slowdown_vs(&base)
        );
    }

    #[test]
    fn ffmalloc_is_fast_but_memory_hungry_under_mixed_lifetimes() {
        let profile = Profile {
            // Churn with a long-lived minority: FFmalloc's pathology.
            lifetime: LifetimeDist::Mixture(vec![
                (0.93, LifetimeDist::Exp(50.0)),
                (0.07, LifetimeDist::Permanent),
            ]),
            ..fast_profile()
        };
        let base = run(&profile, System::Baseline, 5);
        let ff = run(&profile, System::FfMalloc, 5);
        assert!(ff.slowdown_vs(&base) < 1.25, "one-time allocation is cheap");
        assert!(
            ff.memory_overhead_vs(&base) > 1.3,
            "survivors must pin pages: {}",
            ff.memory_overhead_vs(&base)
        );
    }

    #[test]
    fn mostly_concurrent_costs_more_than_fully() {
        let base = run(&fast_profile(), System::Baseline, 9);
        let fully = run(&fast_profile(), System::minesweeper_default(), 9);
        let mostly = run(&fast_profile(), System::minesweeper_mostly(), 9);
        assert!(mostly.stw_cycles > 0, "STW re-checks must happen");
        assert!(
            mostly.slowdown_vs(&base) >= fully.slowdown_vs(&base),
            "mostly {} < fully {}",
            mostly.slowdown_vs(&base),
            fully.slowdown_vs(&base)
        );
    }

    #[test]
    fn ablation_unoptimised_is_worst() {
        let p = fast_profile();
        let base = run(&p, System::Baseline, 11);
        let unopt = run(&p, System::MineSweeper(MsConfig::ablation_unoptimised()), 11);
        let full = run(&p, System::MineSweeper(MsConfig::fully_concurrent()), 11);
        assert!(
            unopt.slowdown_vs(&base) > full.slowdown_vs(&base),
            "unoptimised {} vs full {}",
            unopt.slowdown_vs(&base),
            full.slowdown_vs(&base)
        );
    }

    #[test]
    fn dangling_pointers_cause_failed_frees() {
        let p = Profile { dangling_rate: 0.2, ..fast_profile() };
        let ms = run(&p, System::minesweeper_default(), 13);
        assert!(ms.failed_frees > 0, "20% dangling rate must trip some sweeps");
    }

    #[test]
    fn telemetry_snapshot_matches_headline_metrics() {
        let m = run(&fast_profile(), System::minesweeper_default(), 7);
        let snap = m.telemetry.as_ref().expect("layered runs carry telemetry");
        assert_eq!(snap.counter("layer", "sweeps"), Some(m.sweeps));
        assert_eq!(snap.counter("layer", "failed_frees"), Some(m.failed_frees));
        // Every sweep the engine drove is one sweep_cycles observation.
        let sweeps = snap.histogram(ENGINE_SUBSYSTEM, "sweep_cycles").unwrap();
        assert_eq!(sweeps.count(), m.sweeps);
        assert!(run(&fast_profile(), System::Baseline, 7).telemetry.is_none());
    }

    #[test]
    fn rss_series_is_monotone_in_time() {
        let m = run(&fast_profile(), System::minesweeper_default(), 17);
        for w in m.rss_series.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(m.peak_rss >= m.rss_series.iter().map(|&(_, r)| r).max().unwrap());
    }

    #[test]
    fn scudo_systems_run_and_layer_costs_are_modest() {
        // §7: the same layer over Scudo; overhead relative to the *Scudo*
        // baseline should be small (the paper reports 4.4%).
        let p = fast_profile();
        let scudo_base = run(&p, System::ScudoBaseline, 21);
        let layered = run(&p, System::minesweeper_scudo(), 21);
        assert_eq!(scudo_base.allocs, p.total_allocs);
        assert_eq!(layered.frees, p.total_allocs);
        assert!(layered.sweeps > 0, "quarantine must trigger sweeps over Scudo too");
        let slowdown = layered.slowdown_vs(&scudo_base);
        assert!((1.0..1.6).contains(&slowdown), "scudo-layer slowdown {slowdown}");
    }

    #[test]
    fn crcount_defers_frees_and_taxes_pointer_writes() {
        let p = Profile { dangling_rate: 0.1, ..fast_profile() };
        let base = run(&p, System::Baseline, 23);
        let cr = run(&p, System::CrCount, 23);
        assert_eq!(cr.frees, p.total_allocs);
        assert_eq!(cr.sweeps, 0, "reference counting never sweeps");
        let slowdown = cr.slowdown_vs(&base);
        assert!(slowdown > 1.0, "per-pointer-write upkeep must cost: {slowdown}");
        // Pointer-density work tax: a pointer-heavy profile pays more.
        let heavy = Profile { ptr_density: 1.0, ..p.clone() };
        let base_h = run(&heavy, System::Baseline, 23);
        let cr_h = run(&heavy, System::CrCount, 23);
        assert!(
            cr_h.slowdown_vs(&base_h) > slowdown,
            "denser pointers must cost CRCount more"
        );
    }

    #[test]
    fn oscar_pays_syscalls_and_growing_page_tables() {
        let p = fast_profile();
        let base = run(&p, System::Baseline, 29);
        let os = run(&p, System::Oscar, 29);
        assert_eq!(os.frees, p.total_allocs);
        let slowdown = os.slowdown_vs(&base);
        assert!(slowdown > 1.1, "per-alloc syscalls must show: {slowdown}");
        // Page tables only grow: with a flat live set, a late mid-run RSS
        // sample (metadata included) exceeds an early one by the PTE
        // accumulation. (Avoid the teardown tail, where frames drain.)
        let early = os.rss_series[os.rss_series.len() / 4].1;
        let late = os.rss_series[os.rss_series.len() * 3 / 4].1;
        assert!(late > early, "alias PTEs accumulate: early {early} late {late}");
    }

    #[test]
    fn psweeper_sweeps_periodically_and_defers_frees() {
        let p = fast_profile();
        let ps = run(&p, System::PSweeper, 31);
        assert!(ps.sweeps >= 5, "periodic background sweeps, got {}", ps.sweeps);
        assert!(ps.background_cycles > 0);
    }

    #[test]
    fn dangsan_frees_immediately_but_carries_logs() {
        let p = Profile { ptr_density: 1.0, ..fast_profile() };
        let base = run(&p, System::Baseline, 33);
        let ds = run(&p, System::DangSan, 33);
        assert_eq!(ds.sweeps, 0, "no sweeps: log walk at free");
        assert!(ds.slowdown_vs(&base) > 1.0);
        // Log metadata shows up as memory overhead on pointer-dense heaps.
        assert!(
            ds.memory_overhead_vs(&base) > 1.02,
            "logs must cost memory: {}",
            ds.memory_overhead_vs(&base)
        );
    }

    #[test]
    fn threaded_profiles_pay_sweep_contention() {
        let single = Profile { threads: 1, ..fast_profile() };
        let threaded = Profile { threads: 8, ..fast_profile() };
        let base_s = run(&single, System::Baseline, 19);
        let base_t = run(&threaded, System::Baseline, 19);
        let ms_s = run(&single, System::minesweeper_default(), 19);
        let ms_t = run(&threaded, System::minesweeper_default(), 19);
        assert!(
            ms_t.slowdown_vs(&base_t) >= ms_s.slowdown_vs(&base_s),
            "sweepers must contend with 8 mutator threads"
        );
    }
}
