//! Run metrics: virtual-time accounting and RSS traces.

use telemetry::Snapshot;

/// Everything measured during one simulated run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Benchmark name.
    pub benchmark: String,
    /// System-under-test label ("baseline", "minesweeper", …).
    pub system: String,
    /// Virtual cycles of mutator-visible time: compute + allocator calls +
    /// mitigation work on the critical path (zeroing, syscalls, pauses,
    /// stop-the-world). This is the "run time" of the paper's slowdown
    /// figures.
    pub mutator_cycles: u64,
    /// Virtual cycles consumed by background threads (sweepers, purgers).
    /// Drives the Figure 12 CPU-utilisation overhead.
    pub background_cycles: u64,
    /// `(virtual time, RSS bytes)` samples — the PSRecord trace.
    pub rss_series: Vec<(u64, u64)>,
    /// Peak RSS observed.
    pub peak_rss: u64,
    /// Sweeps / collections performed.
    pub sweeps: u64,
    /// Failed frees (entries retained by sweeps).
    pub failed_frees: u64,
    /// Allocations performed.
    pub allocs: u64,
    /// Frees performed.
    pub frees: u64,
    /// Cycles the mutator spent paused waiting for an overloaded sweep.
    pub pause_cycles: u64,
    /// Cycles of stop-the-world re-checking charged to the mutator.
    pub stw_cycles: u64,
    /// Pages re-inflated by sweeps demand-committing purged memory (only
    /// non-zero with `madvise`-style purging, §4.5).
    pub sweep_demand_commits: u64,
    /// End-of-run telemetry snapshot (layer counters + engine pause/STW/
    /// sweep histograms). Present for MineSweeper-layered systems; the
    /// `sweeps` and `failed_frees` fields above are derived from it.
    pub telemetry: Option<Snapshot>,
}

impl RunMetrics {
    /// Time-weighted average RSS in bytes.
    pub fn avg_rss(&self) -> f64 {
        if self.rss_series.len() < 2 {
            return self.rss_series.first().map_or(0.0, |&(_, r)| r as f64);
        }
        let mut weighted = 0.0;
        for pair in self.rss_series.windows(2) {
            let (t0, r0) = pair[0];
            let (t1, _) = pair[1];
            weighted += r0 as f64 * (t1 - t0) as f64;
        }
        let span = self.rss_series.last().unwrap().0 - self.rss_series[0].0;
        if span == 0 {
            self.rss_series[0].1 as f64
        } else {
            weighted / span as f64
        }
    }

    /// Wall-clock slowdown factor relative to a baseline run of the same
    /// trace.
    pub fn slowdown_vs(&self, baseline: &RunMetrics) -> f64 {
        self.mutator_cycles as f64 / baseline.mutator_cycles.max(1) as f64
    }

    /// Average-memory overhead factor relative to a baseline run.
    pub fn memory_overhead_vs(&self, baseline: &RunMetrics) -> f64 {
        self.avg_rss() / baseline.avg_rss().max(1.0)
    }

    /// Peak-memory overhead factor relative to a baseline run.
    pub fn peak_overhead_vs(&self, baseline: &RunMetrics) -> f64 {
        self.peak_rss as f64 / baseline.peak_rss.max(1) as f64
    }

    /// CPU-utilisation factor: total cycles burned (mutator + background)
    /// over mutator cycles. 1.0 = no extra threads (Figure 12).
    pub fn cpu_utilisation(&self) -> f64 {
        (self.mutator_cycles + self.background_cycles) as f64
            / self.mutator_cycles.max(1) as f64
    }
}

/// Geometric mean of a slice of factors.
///
/// # Panics
///
/// Panics if any factor is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive factors");
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_rss_is_time_weighted() {
        let m = RunMetrics {
            rss_series: vec![(0, 100), (10, 100), (20, 400), (40, 400)],
            ..Default::default()
        };
        // 100 for half the span [0,20), 400 for [20,40).
        assert!((m.avg_rss() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn ratios() {
        let base = RunMetrics {
            mutator_cycles: 1000,
            rss_series: vec![(0, 100), (10, 100)],
            peak_rss: 100,
            ..Default::default()
        };
        let sys = RunMetrics {
            mutator_cycles: 1100,
            background_cycles: 110,
            rss_series: vec![(0, 120), (10, 120)],
            peak_rss: 150,
            ..Default::default()
        };
        assert!((sys.slowdown_vs(&base) - 1.1).abs() < 1e-9);
        assert!((sys.memory_overhead_vs(&base) - 1.2).abs() < 1e-9);
        assert!((sys.peak_overhead_vs(&base) - 1.5).abs() < 1e-9);
        assert!((sys.cpu_utilisation() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
