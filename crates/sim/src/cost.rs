//! The cycle cost model.
//!
//! Constants are order-of-magnitude calibrated to a ~4 GHz x86-64 desktop
//! (the paper's i7-7700): tens of cycles for allocator fast paths, hundreds
//! for arena misses, thousands for syscalls and page faults, one word per
//! cycle-ish for streaming sweeps. Since every figure reports *ratios*
//! against an identically-seeded baseline run, only the relative magnitudes
//! matter.

/// Cycle costs charged by the engine.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostModel {
    /// `malloc` served from the thread cache.
    pub malloc_fast: u64,
    /// `malloc` served from the arena (bin/slab walk).
    pub malloc_slow: u64,
    /// `malloc` that created a fresh slab / mapped a fresh extent.
    pub malloc_fresh: u64,
    /// Baseline `free` (tcache push or arena return).
    pub free_fast: u64,
    /// Registering one entry in a thread-local quarantine buffer.
    pub quarantine_insert: u64,
    /// Per-entry cost of flushing the buffer to the global quarantine.
    pub quarantine_flush_per_entry: u64,
    /// Bytes zeroed per cycle by `memset` (§4.1's main direct cost).
    pub zero_bytes_per_cycle: u64,
    /// One decommit+protect syscall pair (§4.2 unmapping).
    pub unmap_syscall: u64,
    /// Restoring protection on release of an unmapped entry.
    pub remap_syscall: u64,
    /// Bytes of memory one sweeper thread streams per cycle with the
    /// *scalar* word-at-a-time loop (one 8-byte word per cycle). Still
    /// used for MarkUs's transitive mark, which is a dependent pointer
    /// chase the SIMD kernel cannot help.
    pub sweep_bytes_per_cycle: u64,
    /// Words per SIMD classify chunk (one 256-bit group iteration handles
    /// this many 8-byte words through the zero-test / range-test lanes).
    pub sweep_chunk_words: u64,
    /// Cycles per SIMD classify chunk: load + or-tree zero test + two
    /// compares + movemask, pipelined — the §4.3 linear sweep streams at
    /// several words per cycle when memory keeps up.
    pub sweep_chunk_cycles: u64,
    /// Extra cycles per *survivor* (a scanned word that passed the heap
    /// range test): tzcnt extraction plus the shadow-map mark. Survivors
    /// leave the branch-free kernel, so they are the expensive minority.
    pub sweep_survivor_cycles: u64,
    /// Skipping one provably-clean page during an incremental sweep:
    /// soft-dirty test + page-summary cache lookup + replaying the (few)
    /// cached heap-pointing words, instead of the 512-word re-read.
    pub sweep_skip_page: u64,
    /// Stop-the-world re-check of one soft-dirty page (fault handling +
    /// 512-word scan).
    pub stw_page: u64,
    /// Per-scheduled-arena setup of a pooled sweep round: pressure scan,
    /// batch planning, chunk-list interleave and the join barrier.
    pub sweep_round_setup: u64,
    /// Releasing one quarantined entry to the allocator (`je_free`).
    pub release_entry: u64,
    /// Purging one page (amortised `madvise` batch).
    pub purge_page: u64,
    /// One demand-commit page fault (the §4.5 naive-purge penalty).
    pub demand_commit: u64,
    /// Flat penalty charged the first time a cold allocation is touched
    /// (pointer-chasing misses on object + allocator metadata lines).
    /// Quarantine's delay-of-reuse makes *all* recycled memory cold — the
    /// dominant xalancbmk overhead (§5.6). Scaled by each profile's
    /// `cache_sensitivity`.
    pub cold_base: u64,
    /// Additional per-64-byte-line penalty for cold writes beyond the
    /// first line (streaming-prefetch friendly, so much cheaper than
    /// `cold_base`).
    pub cold_line: u64,
    /// Extra per-`malloc` cost under MarkUs: its published implementation
    /// sits on the Boehm GC allocator, measurably slower than jemalloc's
    /// fast path.
    pub markus_malloc_extra: u64,
    /// Extra per-`free` cost under MarkUs (quarantine registration in the
    /// Boehm block structures).
    pub markus_free_extra: u64,
    /// Per-object cost of visiting a node during MarkUs's transitive mark
    /// (dependent-load pointer chase; dominates on small-object heaps).
    pub mark_object_visit: u64,
    /// Sequential-locality discount applied to the cold cost of *fresh*
    /// (never-recycled) memory: bump cursors and fresh slab carves arrive
    /// in prefetchable address order, unlike memory recycled long after it
    /// went cold.
    pub fresh_locality: f64,
    /// Reuse within this many cycles of the free is considered warm.
    pub warm_window: u64,
    /// Cap on the cold-write charge per allocation, in bytes (beyond this
    /// the prefetcher has caught up).
    pub cold_cap_bytes: u64,
    /// FFmalloc bump-pointer `malloc`.
    pub ff_malloc: u64,
    /// FFmalloc `free` (page-count upkeep).
    pub ff_free: u64,
    /// One instrumented pointer store under CRCount (bitmap lookup +
    /// count update — paid on *every* pointer write, §6.6).
    pub crcount_ptr_write: u64,
    /// Fraction of mutator compute CRCount taxes on pointer-write-heavy
    /// code, scaled by the profile's pointer density (stands in for the
    /// instrumented stores the engine does not see individually).
    pub crcount_work_tax: f64,
    /// Oscar `malloc`: mapping the object's shadow virtual page is a
    /// syscall (`mremap`), the scheme's dominant cost on small objects.
    pub oscar_malloc_syscall: u64,
    /// Oscar `free`: revoking the alias (`munmap`/`mprotect`).
    pub oscar_free_syscall: u64,
    /// Registering one slot in pSweeper's live pointer table.
    pub psweeper_register: u64,
    /// Scanning one table slot during a pSweeper background sweep.
    pub psweeper_slot_scan: u64,
    /// Appending one entry to a DangSan pointer log.
    pub dangsan_log_append: u64,
    /// Fraction of mutator compute DangSan taxes on pointer-write-heavy
    /// code (log append on *every* store; heavier than CRCount's counter
    /// update), scaled by pointer density.
    pub dangsan_work_tax: f64,
    /// Walking one log entry at a DangSan free.
    pub dangsan_log_walk: u64,
    /// Recording one provenance edge in the forensics layer (binary
    /// search over quarantine starts + two relaxed atomic updates; paid
    /// only on words that actually hit a candidate, post-sampling).
    pub forensics_edge: u64,
    /// Scudo `malloc` (hardened fast path: class lookup + randomized
    /// free-list pop).
    pub scudo_malloc: u64,
    /// Scudo `free` (header checksum validation + free-list push).
    pub scudo_free: u64,
    /// Cores available on the simulated machine.
    pub cores: u32,
}

impl CostModel {
    /// The default desktop calibration.
    pub fn desktop() -> Self {
        CostModel {
            malloc_fast: 25,
            malloc_slow: 110,
            malloc_fresh: 900,
            free_fast: 30,
            quarantine_insert: 14,
            quarantine_flush_per_entry: 10,
            zero_bytes_per_cycle: 32,
            unmap_syscall: 1_400,
            remap_syscall: 900,
            sweep_bytes_per_cycle: 8,
            sweep_chunk_words: 8,
            sweep_chunk_cycles: 2,
            sweep_survivor_cycles: 4,
            sweep_skip_page: 40,
            stw_page: 800,
            sweep_round_setup: 600,
            release_entry: 70,
            purge_page: 250,
            demand_commit: 2_500,
            cold_base: 200,
            cold_line: 10,
            markus_malloc_extra: 100,
            markus_free_extra: 60,
            mark_object_visit: 80,
            fresh_locality: 0.35,
            warm_window: 150_000,
            cold_cap_bytes: 16 * 1024,
            ff_malloc: 22,
            ff_free: 45,
            crcount_ptr_write: 14,
            crcount_work_tax: 0.25,
            oscar_malloc_syscall: 700,
            oscar_free_syscall: 450,
            psweeper_register: 12,
            psweeper_slot_scan: 6,
            dangsan_log_append: 18,
            dangsan_work_tax: 0.45,
            dangsan_log_walk: 10,
            forensics_edge: 12,
            scudo_malloc: 45,
            scudo_free: 55,
            cores: 8,
        }
    }

    /// Cycles to zero `bytes` bytes.
    pub fn zero_cost(&self, bytes: u64) -> u64 {
        bytes / self.zero_bytes_per_cycle
    }

    /// Cold-write penalty for an allocation of `bytes` bytes (before the
    /// profile's cache-sensitivity scaling).
    pub fn cold_cost(&self, bytes: u64) -> u64 {
        self.cold_base + bytes.min(self.cold_cap_bytes) / 64 * self.cold_line
    }

    /// Cycles one sweeper thread spends marking a region where
    /// `scanned_bytes` were classified by the SIMD kernel, `heap_words`
    /// of them survived the range test (each paying the extraction +
    /// shadow-mark tail), and `skipped_bytes` were advanced over without
    /// reading (incremental sweep: cache-replayed clean pages and
    /// protected/unmapped skips pay only the flat per-page
    /// [`sweep_skip_page`](Self::sweep_skip_page) cost).
    pub fn mark_cost(&self, scanned_bytes: u64, skipped_bytes: u64, heap_words: u64) -> u64 {
        let (scan, skip) = self.mark_cost_parts(scanned_bytes, skipped_bytes, heap_words);
        scan + skip
    }

    /// [`mark_cost`](Self::mark_cost) split into its attribution kinds:
    /// `(mark_scan, skip_replay)`. The parts sum to `mark_cost` exactly,
    /// so the cost ledger can tag them separately without perturbing the
    /// engine's totals.
    pub fn mark_cost_parts(
        &self,
        scanned_bytes: u64,
        skipped_bytes: u64,
        heap_words: u64,
    ) -> (u64, u64) {
        let scan = scanned_bytes / (vmem::WORD_SIZE as u64 * self.sweep_chunk_words)
            * self.sweep_chunk_cycles
            + heap_words * self.sweep_survivor_cycles;
        let skip = skipped_bytes / vmem::PAGE_SIZE as u64 * self.sweep_skip_page;
        (scan, skip)
    }

    /// Words the SIMD classify kernel advances per cycle when no
    /// survivors interrupt it — the rate the engine uses to turn a wall
    /// budget into a word budget for [`sweep_step`].
    ///
    /// [`sweep_step`]: minesweeper::MineSweeper::sweep_step
    pub fn sweep_words_per_cycle(&self) -> u64 {
        (self.sweep_chunk_words / self.sweep_chunk_cycles).max(1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::desktop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_magnitudes_are_sane() {
        let c = CostModel::desktop();
        assert!(c.malloc_fast < c.malloc_slow);
        assert!(c.malloc_slow < c.malloc_fresh);
        assert!(c.quarantine_insert < c.free_fast, "quarantine add is cheap");
        assert!(
            c.mark_object_visit > 0,
            "transitive marking must pay a pointer-chase cost per object"
        );
        assert!(c.demand_commit > c.unmap_syscall / 2);
    }

    #[test]
    fn zero_and_cold_costs_scale() {
        let c = CostModel::desktop();
        assert_eq!(c.zero_cost(64), 2);
        assert_eq!(c.zero_cost(4096), 128);
        assert_eq!(c.cold_cost(48), c.cold_base, "sub-line objects still pay the base");
        assert_eq!(c.cold_cost(64), c.cold_base + c.cold_line);
        assert_eq!(
            c.cold_cost(1 << 30),
            c.cold_base + c.cold_cap_bytes / 64 * c.cold_line,
            "capped"
        );
    }

    #[test]
    fn skipping_a_page_beats_scanning_it() {
        let c = CostModel::desktop();
        let page = vmem::PAGE_SIZE as u64;
        let scan = c.mark_cost(page, 0, 0);
        let skip = c.mark_cost(0, page, 0);
        assert_eq!(scan, page / 8 / c.sweep_chunk_words * c.sweep_chunk_cycles);
        assert_eq!(skip, c.sweep_skip_page);
        // The SIMD kernel narrowed the gap (a clean-page scan is 4x
        // cheaper than scalar), but skipping still wins.
        assert!(skip * 3 < scan, "skip must be far cheaper than a re-read");
        assert_eq!(
            c.mark_cost(8192, 4096, 0),
            8192 / 8 / c.sweep_chunk_words * c.sweep_chunk_cycles + c.sweep_skip_page,
            "mixed step splits cleanly"
        );
    }

    #[test]
    fn survivors_dominate_pointer_dense_pages() {
        let c = CostModel::desktop();
        let page = vmem::PAGE_SIZE as u64;
        let clean = c.mark_cost(page, 0, 0);
        let dense = c.mark_cost(page, 0, 512);
        assert_eq!(dense - clean, 512 * c.sweep_survivor_cycles);
        assert!(
            dense > page / c.sweep_bytes_per_cycle,
            "an all-pointer page costs more than the old scalar stream: \
             every word leaves the branch-free kernel"
        );
        assert!(c.sweep_words_per_cycle() >= 4, "SIMD classify beats 1 word/cycle");
    }
}
