//! The differential security matrix: every corpus scenario replayed
//! against every backend column, with verdicts, attack-window latency and
//! telemetry counters, serialised to the stable `SECURITY_matrix.json`
//! wire format the CI regression gate diffs.
//!
//! The runner is fully deterministic: scenario scripts are fixed or
//! seeded ([`workloads::exploit::fuzz_corpus`]), every backend's
//! randomness is seeded (Scudo), and [`SecurityMatrix::to_json`] emits
//! keys in a fixed order with counters sorted — so the same seed produces
//! a byte-identical document, which is what lets CI treat any diff
//! against the committed baseline as a real behaviour change.

use telemetry::{CostKind, Registry};
use workloads::exploit::{corpus, fuzz_corpus, validate, ExploitOutcome};

use crate::exploit::{run_scenario, DefenceCost, SecSystem, Weaken};

/// Registry subsystem for the corpus runner's counters.
pub const SECURITY_SUBSYSTEM: &str = "security";

/// Wire-format version of `SECURITY_matrix.json`. Schema 2 added the
/// per-cell `defence_cycles` total and `defence_kinds` breakdown.
pub const SECURITY_SCHEMA: u32 = 2;

/// Oldest schema readers must still accept. Schema-1 documents carry no
/// defence costs; they parse with all-zero bills.
pub const SECURITY_MIN_SCHEMA: u32 = 1;

/// One (scenario, backend) cell of the matrix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SecCell {
    /// Scenario name (row).
    pub scenario: String,
    /// Backend label (column).
    pub backend: &'static str,
    /// The verdict.
    pub outcome: ExploitOutcome,
    /// Whether the victim's address was handed out again after its free.
    pub victim_reallocated: bool,
    /// Successful frees until the victim's address was reused (`None`:
    /// the window never opened).
    pub attack_window: Option<u64>,
    /// Allocations the script performed on this backend.
    pub allocs: u64,
    /// Free attempts the script performed on this backend.
    pub frees: u64,
    /// Judged dangling accesses performed.
    pub judged: u64,
    /// MTE tag-mismatch detections raised.
    pub detections: u64,
    /// What defending this cell cost the backend, in model cycles
    /// (schema 2; zero for cells parsed from schema-1 documents).
    pub defence: DefenceCost,
}

/// The full matrix plus the run's provenance and telemetry.
#[derive(Clone, PartialEq, Debug)]
pub struct SecurityMatrix {
    /// Seed that drove the scenario fuzzer.
    pub seed: u64,
    /// Number of fuzzed scenarios appended to the named corpus.
    pub fuzz: u32,
    /// The weaken knob the run used (`"none"` for a real evaluation — a
    /// weakened run is permanently marked so it can never be mistaken for
    /// a baseline).
    pub weaken: &'static str,
    /// Backend column labels, in matrix order.
    pub backends: Vec<&'static str>,
    /// Scenario `(name, summary)` rows, in matrix order.
    pub scenarios: Vec<(String, String)>,
    /// Row-major cells (scenario-major, backend-minor).
    pub cells: Vec<SecCell>,
    /// Sorted `security/*` counter snapshot, reconciled by
    /// `ms-report --security --check`.
    pub counters: Vec<(String, u64)>,
}

/// Runs the whole corpus — the named scenarios plus `fuzz` seeded random
/// ones — against every backend column.
///
/// # Panics
///
/// Panics if a generated scenario script fails
/// [`workloads::exploit::validate`]; the generators are well-formed by
/// construction, so this is a bug, not an input error.
pub fn run_corpus(seed: u64, fuzz: u32, weaken: Weaken) -> SecurityMatrix {
    let mut scenarios = corpus();
    scenarios.extend(fuzz_corpus(seed, fuzz));
    for sc in &scenarios {
        validate(&sc.steps).unwrap_or_else(|e| panic!("malformed scenario {}: {e}", sc.name));
    }
    let backends = SecSystem::all();

    let registry = Registry::new();
    let c_cells = registry.counter(SECURITY_SUBSYSTEM, "cells");
    let c_allocs = registry.counter(SECURITY_SUBSYSTEM, "allocs");
    let c_frees = registry.counter(SECURITY_SUBSYSTEM, "frees");
    let c_judged = registry.counter(SECURITY_SUBSYSTEM, "judged_accesses");
    let c_detect = registry.counter(SECURITY_SUBSYSTEM, "detections");
    let c_reuse = registry.counter(SECURITY_SUBSYSTEM, "reuses");
    let c_defence = registry.counter(SECURITY_SUBSYSTEM, "defence_cycles");
    let c_verdict = |o: ExploitOutcome| {
        registry.counter(
            SECURITY_SUBSYSTEM,
            match o {
                ExploitOutcome::Compromised => "verdict_compromised",
                ExploitOutcome::CleanTermination => "verdict_clean_termination",
                ExploitOutcome::Benign => "verdict_benign",
                ExploitOutcome::Detected => "verdict_detected",
            },
        )
    };

    let mut cells = Vec::with_capacity(scenarios.len() * backends.len());
    for sc in &scenarios {
        let scenario_counter = registry.counter(
            SECURITY_SUBSYSTEM,
            &format!("s_{}_compromised", sc.name.replace('-', "_")),
        );
        for sys in &backends {
            let run = run_scenario(sc, sys, weaken);
            c_cells.inc();
            c_allocs.add(run.allocs);
            c_frees.add(run.frees);
            c_judged.add(run.judged);
            c_detect.add(run.detections);
            c_defence.add(run.defence.total);
            if run.victim_reallocated {
                c_reuse.inc();
            }
            c_verdict(run.outcome).inc();
            if run.outcome == ExploitOutcome::Compromised {
                scenario_counter.inc();
            }
            cells.push(SecCell {
                scenario: sc.name.clone(),
                backend: sys.label(),
                outcome: run.outcome,
                victim_reallocated: run.victim_reallocated,
                attack_window: run.attack_window,
                allocs: run.allocs,
                frees: run.frees,
                judged: run.judged,
                detections: run.detections,
                defence: run.defence,
            });
        }
    }

    let mut counters: Vec<(String, u64)> = registry
        .snapshot()
        .counters
        .iter()
        .map(|c| (format!("{}/{}", c.subsystem, c.name), c.value))
        .collect();
    counters.sort();

    SecurityMatrix {
        seed,
        fuzz,
        weaken: weaken.label(),
        backends: backends.iter().map(|s| s.label()).collect(),
        scenarios: scenarios.into_iter().map(|s| (s.name, s.summary)).collect(),
        cells,
        counters,
    }
}

impl SecurityMatrix {
    /// Cells whose backend is `label`, in scenario order.
    pub fn column<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SecCell> + 'a {
        self.cells.iter().filter(move |c| c.backend == label)
    }

    /// Serialises to the stable wire format: fixed key order, cells
    /// row-major, counters sorted — byte-identical for identical runs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let esc = telemetry::json::escape;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {SECURITY_SCHEMA},");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"fuzz\": {},", self.fuzz);
        let _ = writeln!(out, "  \"weaken\": \"{}\",", esc(self.weaken));
        let backends: Vec<String> =
            self.backends.iter().map(|b| format!("\"{}\"", esc(b))).collect();
        let _ = writeln!(out, "  \"backends\": [{}],", backends.join(", "));
        out.push_str("  \"scenarios\": [\n");
        for (i, (name, summary)) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"summary\": \"{}\"}}{comma}",
                esc(name),
                esc(summary)
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let window = match c.attack_window {
                Some(w) => w.to_string(),
                None => "null".to_string(),
            };
            // Schema 2: the defence bill, nonzero kinds only (ALL order).
            let mut kinds = String::new();
            for k in CostKind::ALL {
                let v = c.defence.kind(k);
                if v > 0 {
                    if !kinds.is_empty() {
                        kinds.push_str(", ");
                    }
                    let _ = write!(kinds, "\"{}\": {v}", k.label());
                }
            }
            let _ = writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"verdict\": \"{}\", \
                 \"victim_reallocated\": {}, \"attack_window\": {window}, \
                 \"allocs\": {}, \"frees\": {}, \"judged\": {}, \"detections\": {}, \
                 \"defence_cycles\": {}, \"defence_kinds\": {{{kinds}}}}}{comma}",
                esc(&c.scenario),
                esc(c.backend),
                c.outcome.label(),
                c.victim_reallocated,
                c.allocs,
                c.frees,
                c.judged,
                c.detections,
                c.defence.total,
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {\n");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {value}{comma}", esc(key));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_scenario_backend_pair() {
        let m = run_corpus(42, 2, Weaken::None);
        assert!(m.scenarios.len() >= 10, "8+ named + 2 fuzzed");
        assert_eq!(m.backends.len(), 10);
        assert_eq!(m.cells.len(), m.scenarios.len() * m.backends.len());
        let cell_count = m
            .counters
            .iter()
            .find(|(k, _)| k == "security/cells")
            .map(|(_, v)| *v);
        assert_eq!(cell_count, Some(m.cells.len() as u64));
    }

    #[test]
    fn minesweeper_column_has_zero_compromised() {
        let m = run_corpus(42, 3, Weaken::None);
        for c in m.column("minesweeper") {
            assert_ne!(
                c.outcome,
                ExploitOutcome::Compromised,
                "minesweeper compromised by {}",
                c.scenario
            );
        }
    }

    #[test]
    fn baseline_column_is_compromised_somewhere() {
        let m = run_corpus(42, 0, Weaken::None);
        assert!(
            m.column("baseline").any(|c| c.outcome == ExploitOutcome::Compromised),
            "the unprotected baseline must fall to at least one scenario"
        );
    }

    #[test]
    fn matrix_json_is_deterministic() {
        let a = run_corpus(7, 3, Weaken::None).to_json();
        let b = run_corpus(7, 3, Weaken::None).to_json();
        assert_eq!(a, b, "same seed must serialise byte-identically");
    }

    #[test]
    fn weakened_run_is_marked_and_flips_minesweeper() {
        let m = run_corpus(42, 0, Weaken::QuarantineOff);
        assert_eq!(m.weaken, "quarantine-off");
        assert!(
            m.column("minesweeper").any(|c| c.outcome == ExploitOutcome::Compromised),
            "quarantine-off must reopen at least one scenario"
        );
    }

    #[test]
    fn defence_cycles_reconcile_with_the_counter() {
        let m = run_corpus(42, 0, Weaken::None);
        let cell_sum: u64 = m.cells.iter().map(|c| c.defence.total).sum();
        let counter = m
            .counters
            .iter()
            .find(|(k, _)| k == "security/defence_cycles")
            .map(|(_, v)| *v);
        assert_eq!(counter, Some(cell_sum), "counter must equal the cell sum");
        assert!(cell_sum > 0, "protected columns must have been billed");
        assert!(
            m.column("baseline").all(|c| c.defence.total == 0),
            "the unprotected baseline defends for free"
        );
        assert!(
            m.column("minesweeper").any(|c| c.defence.total > 0),
            "minesweeper must pay for its quarantine somewhere"
        );
    }

    #[test]
    fn json_parses_back() {
        let m = run_corpus(1, 1, Weaken::None);
        let doc = telemetry::json::Json::parse(&m.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(u64::from(SECURITY_SCHEMA)));
        assert_eq!(
            doc.get("cells").unwrap().as_array().unwrap().len(),
            m.cells.len()
        );
        assert_eq!(doc.get("weaken").unwrap().as_str(), Some("none"));
    }
}
