//! The systems under test.

use minesweeper::MsConfig;
use baselines::MarkUsConfig;

/// Which mitigation (if any) a run uses.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum System {
    /// Unmodified JeMalloc-style allocator — the paper's baseline
    /// ("the version with unmodified JeMalloc loaded", §5.1).
    Baseline,
    /// MineSweeper with the given configuration.
    MineSweeper(MsConfig),
    /// MarkUs with the given configuration.
    MarkUs(MarkUsConfig),
    /// FFmalloc (one-time allocator).
    FfMalloc,
    /// Unmodified Scudo-style hardened allocator (baseline for the §7
    /// portability experiment).
    ScudoBaseline,
    /// MineSweeper layered over Scudo (§7: "we have also built a Scudo
    /// implementation at 4.4% overhead").
    MineSweeperScudo(MsConfig),
    /// CRCount-style reference counting (§6.4): per-pointer-store upkeep,
    /// deferred frees, no sweeps.
    CrCount,
    /// Oscar-style page-permission revocation with shadow virtual pages
    /// (§6.3): a syscall per allocation and free, growing page tables.
    Oscar,
    /// pSweeper-style concurrent pointer nullification (§6.4): live
    /// pointer table swept periodically by a background thread.
    PSweeper,
    /// DangSan-style per-object pointer logs, walked and nullified at
    /// `free()` (§6.4).
    DangSan,
}

impl System {
    /// MineSweeper in its paper-default fully concurrent configuration.
    pub fn minesweeper_default() -> Self {
        System::MineSweeper(MsConfig::fully_concurrent())
    }

    /// MineSweeper in mostly concurrent (stop-the-world) mode.
    pub fn minesweeper_mostly() -> Self {
        System::MineSweeper(MsConfig::mostly_concurrent())
    }

    /// MarkUs with published defaults.
    pub fn markus_default() -> Self {
        System::MarkUs(MarkUsConfig::standard())
    }

    /// MineSweeper-on-Scudo with the paper-default configuration.
    pub fn minesweeper_scudo() -> Self {
        System::MineSweeperScudo(MsConfig::fully_concurrent())
    }

    /// The MineSweeper layer configuration, for the systems that carry
    /// one (the multi-arena runner only accepts those).
    pub fn ms_config(&self) -> Option<MsConfig> {
        match self {
            System::MineSweeper(cfg) | System::MineSweeperScudo(cfg) => Some(*cfg),
            _ => None,
        }
    }

    /// Short label used in tables and metric records.
    pub fn label(&self) -> &'static str {
        match self {
            System::Baseline => "baseline",
            System::MineSweeper(cfg) => {
                if cfg.mode == minesweeper::SweepMode::MostlyConcurrent {
                    "minesweeper-mostly"
                } else {
                    "minesweeper"
                }
            }
            System::MarkUs(_) => "markus",
            System::FfMalloc => "ffmalloc",
            System::ScudoBaseline => "scudo",
            System::MineSweeperScudo(_) => "minesweeper-scudo",
            System::CrCount => "crcount",
            System::Oscar => "oscar",
            System::PSweeper => "psweeper",
            System::DangSan => "dangsan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(System::Baseline.label(), "baseline");
        assert_eq!(System::minesweeper_default().label(), "minesweeper");
        assert_eq!(System::minesweeper_mostly().label(), "minesweeper-mostly");
        assert_eq!(System::markus_default().label(), "markus");
        assert_eq!(System::FfMalloc.label(), "ffmalloc");
        assert_eq!(System::ScudoBaseline.label(), "scudo");
        assert_eq!(System::minesweeper_scudo().label(), "minesweeper-scudo");
        assert_eq!(System::CrCount.label(), "crcount");
        assert_eq!(System::Oscar.label(), "oscar");
        assert_eq!(System::PSweeper.label(), "psweeper");
        assert_eq!(System::DangSan.label(), "dangsan");
    }
}
