//! Plain-text table formatting for the figure regenerators.

use telemetry::{Histogram, Snapshot};

/// Formats an aligned table. The first row is the header; a separator line
/// is inserted under it. Columns are right-aligned except the first.
///
/// # Example
///
/// ```
/// let t = sim::report::table(&[
///     vec!["bench".into(), "slowdown".into()],
///     vec!["xalancbmk".into(), "1.73".into()],
/// ]);
/// assert!(t.contains("xalancbmk"));
/// ```
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Formats a factor as `1.234x`.
pub fn fx(x: f64) -> String {
    format!("{x:.3}x")
}

/// Formats an optional paper-reported factor, or `-`.
pub fn fx_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), fx)
}

/// Formats bytes with a binary-unit suffix.
pub fn bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Renders a run's telemetry [`Snapshot`] as aligned tables: one of
/// counters (`subsystem/name  value`) and — when any histograms were
/// recorded — one of histogram summaries (count, sum, mean, p-max bucket
/// bound). Units are virtual cycles for the engine's histograms.
pub fn telemetry_tables(snap: &Snapshot) -> String {
    let mut rows = vec![vec!["counter".to_string(), "value".to_string()]];
    for c in &snap.counters {
        rows.push(vec![format!("{}/{}", c.subsystem, c.name), c.value.to_string()]);
    }
    let mut out = table(&rows);
    let live: Vec<_> = snap.histograms.iter().filter(|h| h.count() > 0).collect();
    if !live.is_empty() {
        let mut hrows = vec![vec![
            "histogram".to_string(),
            "count".to_string(),
            "sum".to_string(),
            "mean".to_string(),
            "max<=".to_string(),
        ]];
        for h in live {
            let count = h.count();
            let mean = h.sum as f64 / count as f64;
            let top = h.buckets.iter().map(|&(i, _)| i).max().unwrap_or(0);
            hrows.push(vec![
                format!("{}/{}", h.subsystem, h.name),
                count.to_string(),
                h.sum.to_string(),
                format!("{mean:.0}"),
                Histogram::bucket_bound(top).to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&table(&hrows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["name".into(), "x".into()],
            vec!["longer-name".into(), "1.5".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("longer-name"));
        assert!(lines[0].ends_with("  x") || lines[0].contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(1.2345), "1.234x");
        assert_eq!(fx_opt(None), "-");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn telemetry_tables_render_counters_and_histograms() {
        let reg = telemetry::Registry::new();
        reg.counter("layer", "sweeps").add(3);
        let h = reg.histogram("engine", "pause_cycles");
        h.record(100);
        h.record(200);
        let t = telemetry_tables(&reg.snapshot());
        assert!(t.contains("layer/sweeps"));
        assert!(t.contains("engine/pause_cycles"));
        assert!(t.contains("150"), "mean of 100 and 200:\n{t}");
        // Empty histograms are suppressed.
        let reg2 = telemetry::Registry::new();
        reg2.counter("layer", "sweeps").add(1);
        reg2.histogram("engine", "idle");
        assert!(!telemetry_tables(&reg2.snapshot()).contains("idle"));
    }
}
