//! Figure 14: number of sweeps triggered per benchmark (fully concurrent).
//! Absolute counts scale with the (scaled-down) run length; the ordering —
//! omnetpp most, xalancbmk second, allocation-light benchmarks near zero —
//! is the reproduced shape.

use ms_bench::{maybe_quick, run_suite};
use sim::report::table;
use sim::System;

fn main() {
    println!("== Figure 14: number of sweeps triggered ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let rows = run_suite(&profiles, &[System::minesweeper_default()]);
    let mut out = vec![vec![
        "benchmark".to_string(),
        "sweeps".into(),
        "failed frees".into(),
        "paper sweeps (full-length run)".into(),
    ]];
    for r in &rows {
        let m = r.first(0);
        out.push(vec![
            r.profile.name.to_string(),
            m.sweeps.to_string(),
            m.failed_frees.to_string(),
            r.profile.paper.sweeps.map_or("-".into(), |s| s.to_string()),
        ]);
    }
    println!("{}", table(&out));
    println!("Shape check: omnetpp > xalancbmk > gcc/perlbench >> compute-bound.");
}
