//! Figures 7 & 9: SPEC CPU2006 slowdown — MineSweeper vs MarkUs and
//! FFmalloc (rerun on the same substrate), plus the literature-reported
//! comparator rows (Oscar, DangSan, pSweeper-1s, CRCount).

use baselines::literature;
use ms_bench::{compared_systems, geomean_slowdown, maybe_quick, run_suite};
use sim::report::{fx, fx_opt, table};

fn main() {
    println!("== Figures 7 & 9: SPEC CPU2006 slowdown ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let rows = run_suite(&profiles, &compared_systems());

    let mut out = vec![vec![
        "benchmark".to_string(),
        "markus".into(),
        "ffmalloc".into(),
        "minesweeper".into(),
        "paper:markus".into(),
        "paper:ff".into(),
        "paper:ms".into(),
    ]];
    for r in &rows {
        out.push(vec![
            r.profile.name.to_string(),
            fx(r.slowdown(0)),
            fx(r.slowdown(1)),
            fx(r.slowdown(2)),
            fx_opt(r.profile.paper.markus_slowdown),
            fx_opt(r.profile.paper.ff_slowdown),
            fx_opt(r.profile.paper.ms_slowdown),
        ]);
    }
    out.push(vec![
        "geomean".to_string(),
        fx(geomean_slowdown(&rows, 0)),
        fx(geomean_slowdown(&rows, 1)),
        fx(geomean_slowdown(&rows, 2)),
        fx(1.155),
        fx(1.035),
        fx(1.054),
    ]);
    println!("{}", table(&out));

    println!("Literature comparators (reported numbers, as in the paper):\n");
    let mut lit = vec![vec!["scheme".to_string(), "geomean slowdown".into()]];
    for row in literature::all() {
        lit.push(vec![row.name.to_string(), fx(row.geomean_slowdown())]);
    }
    println!("{}", table(&lit));
    println!("Shape checks: MineSweeper < MarkUs everywhere it matters;");
    println!("FFmalloc cheapest in time; xalancbmk is everyone's worst case.");
}
