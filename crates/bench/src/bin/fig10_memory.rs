//! Figures 10 & 11: SPEC CPU2006 average memory overhead for the three
//! rerun systems (plus literature rows), and MineSweeper's average vs peak
//! overhead per benchmark.

use baselines::literature;
use ms_bench::{compared_systems, geomean_memory, geomean_peak, maybe_quick, run_suite};
use sim::report::{fx, fx_opt, table};

fn main() {
    println!("== Figure 10: SPEC CPU2006 average memory overhead ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let rows = run_suite(&profiles, &compared_systems());

    let mut out = vec![vec![
        "benchmark".to_string(),
        "markus".into(),
        "ffmalloc".into(),
        "minesweeper".into(),
        "paper:markus".into(),
        "paper:ff".into(),
        "paper:ms".into(),
    ]];
    for r in &rows {
        out.push(vec![
            r.profile.name.to_string(),
            fx(r.memory(0)),
            fx(r.memory(1)),
            fx(r.memory(2)),
            fx_opt(r.profile.paper.markus_memory),
            fx_opt(r.profile.paper.ff_memory),
            fx_opt(r.profile.paper.ms_memory),
        ]);
    }
    out.push(vec![
        "geomean".to_string(),
        fx(geomean_memory(&rows, 0)),
        fx(geomean_memory(&rows, 1)),
        fx(geomean_memory(&rows, 2)),
        fx(1.123),
        fx(2.44),
        fx(1.111),
    ]);
    println!("{}", table(&out));

    println!("== Figure 11: MineSweeper average vs peak memory overhead ==\n");
    let mut out = vec![vec!["benchmark".to_string(), "average".into(), "peak".into()]];
    for r in &rows {
        out.push(vec![r.profile.name.to_string(), fx(r.memory(2)), fx(r.peak(2))]);
    }
    out.push(vec![
        "geomean".to_string(),
        fx(geomean_memory(&rows, 2)),
        fx(geomean_peak(&rows, 2)),
    ]);
    println!("{}", table(&out));
    println!("Paper geomeans: 1.111x average, 1.177x peak; worst case gcc.\n");

    println!("Literature comparators (reported numbers):\n");
    let mut lit = vec![vec!["scheme".to_string(), "geomean memory".into()]];
    for row in literature::all() {
        lit.push(vec![row.name.to_string(), fx(row.geomean_memory())]);
    }
    println!("{}", table(&lit));
}
