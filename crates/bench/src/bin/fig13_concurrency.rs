//! Figure 13: fully concurrent vs mostly concurrent (stop-the-world)
//! slowdown. Paper: 5.4% vs 8.2% geomean.

use ms_bench::{geomean_slowdown, maybe_quick, run_suite};
use sim::report::{fx, table};
use sim::System;

fn main() {
    println!("== Figure 13: fully vs mostly concurrent slowdown ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let rows = run_suite(
        &profiles,
        &[System::minesweeper_default(), System::minesweeper_mostly()],
    );
    let mut out =
        vec![vec!["benchmark".to_string(), "fully".into(), "mostly (STW)".into()]];
    for r in &rows {
        out.push(vec![r.profile.name.to_string(), fx(r.slowdown(0)), fx(r.slowdown(1))]);
    }
    out.push(vec![
        "geomean".to_string(),
        fx(geomean_slowdown(&rows, 0)),
        fx(geomean_slowdown(&rows, 1)),
    ]);
    println!("{}", table(&out));
    println!("Paper: 1.054x fully vs 1.082x mostly; memory similar (1.111 vs 1.117).");
}
