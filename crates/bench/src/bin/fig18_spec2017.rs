//! Figure 18: SPECspeed2017 time and memory overheads under threaded
//! workloads (starred benchmarks are OpenMP-parallel; sweeper threads
//! compete with the application's own threads for cores).

use ms_bench::{compared_systems, geomean_memory, geomean_slowdown, run_suite};
use sim::report::{fx, fx_opt, table};

fn main() {
    println!("== Figure 18: SPECspeed2017 ==\n");
    let profiles = workloads::spec2017::all();
    let rows = run_suite(&profiles, &compared_systems());

    for (metric, title) in
        [("slowdown", "Figure 18a: time"), ("memory", "Figure 18b: average memory")]
    {
        println!("-- {title} --\n");
        let mut out = vec![vec![
            "benchmark".to_string(),
            "markus".into(),
            "ffmalloc".into(),
            "minesweeper".into(),
            "paper:ms".into(),
        ]];
        for r in &rows {
            let star = if r.profile.threads > 1 { "*" } else { "" };
            let paper = if metric == "slowdown" {
                r.profile.paper.ms_slowdown
            } else {
                r.profile.paper.ms_memory
            };
            let v = |i| if metric == "slowdown" { r.slowdown(i) } else { r.memory(i) };
            out.push(vec![
                format!("{}{star}", r.profile.name),
                fx(v(0)),
                fx(v(1)),
                fx(v(2)),
                fx_opt(paper),
            ]);
        }
        let gm = |i| {
            if metric == "slowdown" { geomean_slowdown(&rows, i) } else { geomean_memory(&rows, i) }
        };
        out.push(vec!["geomean".to_string(), fx(gm(0)), fx(gm(1)), fx(gm(2)), "-".into()]);
        println!("{}", table(&out));
    }
    println!("Paper geomeans: MineSweeper 1.108x time / 1.079x memory;");
    println!("FFmalloc 1.053x / 1.222x; MarkUs 1.163x / 1.126x.");
    println!("Worst cases: xalancbmk 2.0x, wrf 1.66x (sweeper/core contention).");
}
