//! Design-choice ablations beyond the paper's figures — the trade-offs
//! DESIGN.md calls out:
//!
//! 1. **Sweep threshold** (§3.2): the paper picks 15% where MarkUs picked
//!    25%, trading sweep frequency for memory. Sweep the knob.
//! 2. **Helper threads** (§4.4): 6 helpers by default; how does sweep
//!    throughput (and hence memory promptness) scale?
//! 3. **Pause factor** (§5.7): "MineSweeper also makes it possible to
//!    trade off slowdown for memory usage by altering the pausing
//!    threshold."

use minesweeper::MsConfig;
use ms_bench::SEED;
use sim::report::{fx, table};
use sim::{run, System};
use workloads::{mimalloc_bench, spec2006};

fn main() {
    let xalanc = spec2006::by_name("xalancbmk").expect("profile");
    let omnetpp = spec2006::by_name("omnetpp").expect("profile");
    let stress = mimalloc_bench::by_name("glibc-simple").expect("profile");

    println!("== Ablation A: sweep threshold (xalancbmk + omnetpp) ==\n");
    let mut rows = vec![vec![
        "threshold".to_string(),
        "xalanc slowdown".into(),
        "xalanc memory".into(),
        "omnetpp slowdown".into(),
        "omnetpp memory".into(),
        "omnetpp sweeps".into(),
    ]];
    let base_x = run(&xalanc, System::Baseline, SEED);
    let base_o = run(&omnetpp, System::Baseline, SEED);
    for threshold in [0.05, 0.10, 0.15, 0.25, 0.50] {
        let cfg = MsConfig::builder().sweep_threshold(threshold).build();
        let x = run(&xalanc, System::MineSweeper(cfg), SEED);
        let o = run(&omnetpp, System::MineSweeper(cfg), SEED);
        rows.push(vec![
            format!("{:.0}%", threshold * 100.0),
            fx(x.slowdown_vs(&base_x)),
            fx(x.memory_overhead_vs(&base_x)),
            fx(o.slowdown_vs(&base_o)),
            fx(o.memory_overhead_vs(&base_o)),
            o.sweeps.to_string(),
        ]);
    }
    println!("{}", table(&rows));
    println!("Expected: lower thresholds sweep more (more time, less memory);");
    println!("15% is the knee the paper chose.\n");

    println!("== Ablation B: helper threads (omnetpp) ==\n");
    let mut rows = vec![vec![
        "helpers".to_string(),
        "slowdown".into(),
        "memory".into(),
        "cpu util".into(),
    ]];
    for helpers in [0usize, 1, 3, 6, 7] {
        let cfg = MsConfig::builder().helper_threads(helpers).build();
        let m = run(&omnetpp, System::MineSweeper(cfg), SEED);
        rows.push(vec![
            (helpers + 1).to_string() + " threads",
            fx(m.slowdown_vs(&base_o)),
            fx(m.memory_overhead_vs(&base_o)),
            fx(m.cpu_utilisation()),
        ]);
    }
    println!("{}", table(&rows));
    println!("Expected: more sweepers recycle memory more promptly (memory down)");
    println!("at higher CPU utilisation; returns diminish near the core count.\n");

    println!("== Ablation C: pause factor (glibc-simple stress) ==\n");
    let base_s = run(&stress, System::Baseline, SEED);
    let mut rows = vec![vec![
        "pause factor".to_string(),
        "slowdown".into(),
        "memory".into(),
        "pause cycles".into(),
    ]];
    for factor in [1.5, 2.0, 4.0, 8.0, 100.0] {
        let cfg = MsConfig::builder().pause_factor(factor).build();
        let m = run(&stress, System::MineSweeper(cfg), SEED);
        rows.push(vec![
            format!("{factor}"),
            fx(m.slowdown_vs(&base_s)),
            fx(m.memory_overhead_vs(&base_s)),
            m.pause_cycles.to_string(),
        ]);
    }
    println!("{}", table(&rows));
    println!("Expected: tighter pausing = more slowdown, less memory (§5.7).");
}
