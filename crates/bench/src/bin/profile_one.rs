//! Developer utility: time one (benchmark, system) run in real seconds.
//! `cargo run --release -p ms-bench --bin profile_one -- <bench> <system>`

use sim::{run, System};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(String::as_str).unwrap_or("dealII");
    let sys = match args.get(2).map(String::as_str).unwrap_or("baseline") {
        "ms" => System::minesweeper_default(),
        "mostly" => System::minesweeper_mostly(),
        "markus" => System::markus_default(),
        "ff" => System::FfMalloc,
        _ => System::Baseline,
    };
    let p = workloads::spec2006::by_name(bench)
        .or_else(|| workloads::spec2017::by_name(bench))
        .or_else(|| workloads::mimalloc_bench::by_name(bench))
        .expect("unknown benchmark");
    let t = Instant::now();
    let m = run(&p, sys, 42);
    println!(
        "{bench}/{}: wall {:?}  vcycles {}  sweeps {}  rss_avg {:.1} MiB  peak {:.1} MiB  failed {}  bg {}",
        sys.label(),
        t.elapsed(),
        m.mutator_cycles,
        m.sweeps,
        m.avg_rss() / (1024.0 * 1024.0),
        m.peak_rss as f64 / (1024.0 * 1024.0),
        m.failed_frees,
        m.background_cycles,
    );
}
