//! Figure 8: memory (RSS) over time for sphinx3 — baseline vs FFmalloc vs
//! MineSweeper. FFmalloc's trace turns from flat to monotonically
//! increasing (fragmentation from the long-lived minority); MineSweeper
//! stays close to the baseline.

use ms_bench::SEED;
use sim::report::table;
use sim::{run, System};

fn main() {
    println!("== Figure 8: sphinx3 RSS over time ==\n");
    let p = workloads::spec2006::by_name("sphinx3").expect("profile exists");
    let base = run(&p, System::Baseline, SEED);
    let ff = run(&p, System::FfMalloc, SEED);
    let ms = run(&p, System::minesweeper_default(), SEED);

    // Sample each series at 20 normalised time points.
    let sample = |m: &sim::RunMetrics, frac: f64| -> f64 {
        let t_end = m.rss_series.last().unwrap().0;
        let t = (t_end as f64 * frac) as u64;
        let idx = m.rss_series.partition_point(|&(time, _)| time <= t);
        let (_, rss) = m.rss_series[idx.saturating_sub(1)];
        rss as f64 / (1024.0 * 1024.0)
    };
    let mut rows = vec![vec![
        "time".to_string(),
        "baseline MiB".into(),
        "ffmalloc MiB".into(),
        "minesweeper MiB".into(),
    ]];
    for i in 0..=20 {
        let f = i as f64 / 20.0;
        rows.push(vec![
            format!("{f:.2}"),
            format!("{:.2}", sample(&base, f)),
            format!("{:.2}", sample(&ff, f)),
            format!("{:.2}", sample(&ms, f)),
        ]);
    }
    println!("{}", table(&rows));

    // Compare mid-run to just before teardown (the final sample collapses
    // as the process exits and frees everything).
    let half = |m: &sim::RunMetrics| (sample(m, 0.5), sample(m, 0.95));
    let (ff_mid, ff_end) = half(&ff);
    println!("FFmalloc mid-run {ff_mid:.1} MiB -> late-run {ff_end:.1} MiB (should grow);");
    let (ms_mid, ms_end) = half(&ms);
    println!("MineSweeper mid-run {ms_mid:.1} MiB -> late-run {ms_end:.1} MiB (should stay flat).");
}
