//! Every literature comparator the paper charts (Figures 7 & 10), run for
//! real on the same substrate: Oscar, DangSan, pSweeper, CRCount — next to
//! their published per-benchmark numbers. The MineSweeper paper only
//! reprints these rows; this repository implements all four schemes.

use baselines::literature::{self, LiteratureRow};
use ms_bench::{maybe_quick, SEED};
use sim::report::{fx, fx_opt, table};
use sim::{geomean, run, System};

fn main() {
    println!("== Implemented comparators vs their published numbers ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let systems: [(System, LiteratureRow); 4] = [
        (System::Oscar, literature::oscar()),
        (System::DangSan, literature::dangsan()),
        (System::PSweeper, literature::psweeper_1s()),
        (System::CrCount, literature::crcount()),
    ];

    for (sys, lit) in systems {
        println!("-- {} --\n", lit.name);
        let mut rows = vec![vec![
            "benchmark".to_string(),
            "slowdown".into(),
            "memory".into(),
            "published slowdown".into(),
            "published memory".into(),
        ]];
        let mut slowdowns = Vec::new();
        let mut memories = Vec::new();
        for p in &profiles {
            eprintln!("  {} / {}...", lit.name, p.name);
            let base = run(p, System::Baseline, SEED);
            let m = run(p, sys, SEED);
            let s = m.slowdown_vs(&base);
            let mem = m.memory_overhead_vs(&base);
            slowdowns.push(s);
            memories.push(mem);
            let idx = literature::SPEC2006.iter().position(|&b| b == p.name);
            rows.push(vec![
                p.name.to_string(),
                fx(s),
                fx(mem),
                fx_opt(idx.and_then(|i| lit.slowdown[i])),
                fx_opt(idx.and_then(|i| lit.memory[i])),
            ]);
        }
        rows.push(vec![
            "geomean".to_string(),
            fx(geomean(&slowdowns)),
            fx(geomean(&memories)),
            fx(lit.geomean_slowdown()),
            fx(lit.geomean_memory()),
        ]);
        println!("{}", table(&rows));
    }
    println!("Character checks: Oscar worst on allocation-heavy (syscalls/alloc);");
    println!("DangSan memory blows up with pointer density; pSweeper/CRCount pay");
    println!("per-pointer upkeep even on allocation-light benchmarks.");
}
