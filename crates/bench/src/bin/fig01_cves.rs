//! Figure 1: reported use-after-free / double-free vulnerabilities by year.
//!
//! This is background data from the National Vulnerability Database, not a
//! system measurement; the paper plots NVD counts. We embed the series as
//! read off Figure 1 (the NVD itself is an online service) and print both
//! panels.

use sim::report::table;

fn main() {
    println!("== Figure 1a: UAF (CWE-416) + double free (CWE-415) in the NVD ==\n");
    // (year, total reports, % of all reported vulnerabilities), read off
    // Figure 1a.
    let nvd: [(u32, u32, f64); 8] = [
        (2012, 130, 2.5),
        (2013, 160, 3.1),
        (2014, 150, 1.9),
        (2015, 285, 3.3),
        (2016, 315, 3.1),
        (2017, 360, 2.4),
        (2018, 400, 2.4),
        (2019, 550, 3.2),
    ];
    let mut rows = vec![vec!["year".to_string(), "total".into(), "% of all CVEs".into()]];
    for (y, n, p) in nvd {
        rows.push(vec![y.to_string(), n.to_string(), format!("{p:.1}%")]);
    }
    println!("{}", table(&rows));
    println!("Trend: counts roughly quadruple 2012->2019 while other bug");
    println!("classes are mitigated away — the paper's motivation.\n");

    println!("== Figure 1b: UAF vulnerabilities in the Linux kernel ==\n");
    let kernel: [(u32, u32, f64); 4] =
        [(2016, 13, 3.0), (2017, 21, 4.6), (2018, 14, 8.0), (2019, 26, 16.0)];
    let mut rows = vec![vec!["year".to_string(), "total".into(), "% of kernel CVEs".into()]];
    for (y, n, p) in kernel {
        rows.push(vec![y.to_string(), n.to_string(), format!("{p:.1}%")]);
    }
    println!("{}", table(&rows));
}
