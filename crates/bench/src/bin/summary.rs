//! §5.8 headline summary: the numbers the abstract quotes, measured on the
//! simulated substrate next to the paper's reported values.

use ms_bench::{compared_systems, geomean_memory, geomean_slowdown, run_suite};
use sim::report::{fx, table};
use sim::{geomean, System};

fn main() {
    println!("== Headline summary (SPEC CPU2006) ==\n");
    let profiles = workloads::spec2006::all();
    let mut systems = compared_systems();
    systems.push(System::minesweeper_mostly());
    let rows = run_suite(&profiles, &systems);

    let cpu: Vec<f64> =
        rows.iter().map(|r| r.first(2).cpu_utilisation()).collect();
    let out = vec![
        vec!["metric".to_string(), "measured".into(), "paper".into()],
        vec![
            "MineSweeper slowdown (geomean)".into(),
            fx(geomean_slowdown(&rows, 2)),
            fx(1.054),
        ],
        vec![
            "MineSweeper memory (geomean)".into(),
            fx(geomean_memory(&rows, 2)),
            fx(1.111),
        ],
        vec!["MineSweeper CPU utilisation".into(), fx(geomean(&cpu)), fx(1.096)],
        vec![
            "Mostly-concurrent slowdown".into(),
            fx(geomean_slowdown(&rows, 3)),
            fx(1.082),
        ],
        vec![
            "Mostly-concurrent memory".into(),
            fx(geomean_memory(&rows, 3)),
            fx(1.117),
        ],
        vec!["MarkUs slowdown".into(), fx(geomean_slowdown(&rows, 0)), fx(1.155)],
        vec!["MarkUs memory".into(), fx(geomean_memory(&rows, 0)), fx(1.123)],
        vec!["FFmalloc slowdown".into(), fx(geomean_slowdown(&rows, 1)), fx(1.035)],
        vec!["FFmalloc memory".into(), fx(geomean_memory(&rows, 1)), fx(3.44)],
    ];
    println!("{}", table(&out));
    println!("(Paper FFmalloc memory: 244% overhead = 3.44x average factor.)");
}
