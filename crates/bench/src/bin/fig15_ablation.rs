//! Figures 15 & 16: run-time and memory overhead as the §4 optimisations
//! are applied one-by-one: Unoptimised -> +Zeroing -> +Unmapping ->
//! +Concurrency -> +Purging.

use minesweeper::MsConfig;
use ms_bench::{geomean_memory, geomean_slowdown, maybe_quick, run_suite};
use sim::report::{fx, table};
use sim::System;

fn main() {
    println!("== Figures 15 & 16: optimisation ablation ladder ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let ladder = [
        ("unoptimised", MsConfig::ablation_unoptimised()),
        ("+zeroing", MsConfig::ablation_zeroing()),
        ("+unmapping", MsConfig::ablation_unmapping()),
        ("+concurrency", MsConfig::ablation_concurrency()),
        ("+purging", MsConfig::ablation_purging()),
    ];
    let systems: Vec<System> =
        ladder.iter().map(|&(_, cfg)| System::MineSweeper(cfg)).collect();
    let rows = run_suite(&profiles, &systems);

    for (metric, titled) in [("slowdown", "Figure 15: run-time overhead"),
                             ("memory", "Figure 16: average memory overhead")] {
        println!("-- {titled} --\n");
        let mut out = vec![{
            let mut h = vec!["benchmark".to_string()];
            h.extend(ladder.iter().map(|&(n, _)| n.to_string()));
            h
        }];
        for r in &rows {
            let mut line = vec![r.profile.name.to_string()];
            for i in 0..ladder.len() {
                line.push(fx(if metric == "slowdown" { r.slowdown(i) } else { r.memory(i) }));
            }
            out.push(line);
        }
        let mut gm = vec!["geomean".to_string()];
        for i in 0..ladder.len() {
            gm.push(fx(if metric == "slowdown" {
                geomean_slowdown(&rows, i)
            } else {
                geomean_memory(&rows, i)
            }));
        }
        out.push(gm);
        println!("{}", table(&out));
    }
    println!("Paper waypoints: sequential (+unmapping) 1.095x time / 1.211x memory;");
    println!("+concurrency 1.050x time / 1.241x memory; +purging 1.054x / 1.111x.");
}
