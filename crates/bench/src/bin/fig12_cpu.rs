//! Figure 12: additional CPU utilisation from MineSweeper's background
//! sweeper threads. Paper: geomean 1.096x, worst case 2.3x (xalancbmk).

use ms_bench::{maybe_quick, run_suite};
use sim::report::{fx, table};
use sim::{geomean, System};

fn main() {
    println!("== Figure 12: additional CPU utilisation (MineSweeper) ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let rows = run_suite(&profiles, &[System::minesweeper_default()]);
    let mut out = vec![vec!["benchmark".to_string(), "cpu utilisation".into()]];
    let mut utils = Vec::new();
    for r in &rows {
        let u = r.first(0).cpu_utilisation();
        utils.push(u);
        out.push(vec![r.profile.name.to_string(), fx(u)]);
    }
    out.push(vec!["geomean".to_string(), fx(geomean(&utils))]);
    println!("{}", table(&out));
    println!("Paper: geomean 1.096x, maximum 2.3x for xalancbmk.");
}
