//! CRCount implemented vs CRCount as published.
//!
//! The MineSweeper paper reprints CRCount's numbers (Figs 7 & 10); this
//! repository also *implements* the scheme (reference counting on
//! instrumented pointer stores, deferred frees, zero-fill invalidation) so
//! its character can be checked against the published row: overheads track
//! pointer density rather than allocation rate, and memory stays near
//! baseline (only dangling-referenced objects linger).

use baselines::literature;
use ms_bench::{maybe_quick, SEED};
use sim::report::{fx, fx_opt, table};
use sim::{geomean, run, System};

fn main() {
    println!("== CRCount: measured (our implementation) vs published ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let lit = literature::crcount();
    let mut rows = vec![vec![
        "benchmark".to_string(),
        "slowdown".into(),
        "memory".into(),
        "published slowdown".into(),
        "published memory".into(),
    ]];
    let mut slowdowns = Vec::new();
    let mut memories = Vec::new();
    for p in &profiles {
        eprintln!("  running {}...", p.name);
        let base = run(p, System::Baseline, SEED);
        let cr = run(p, System::CrCount, SEED);
        let s = cr.slowdown_vs(&base);
        let m = cr.memory_overhead_vs(&base);
        slowdowns.push(s);
        memories.push(m);
        let idx = literature::SPEC2006.iter().position(|&b| b == p.name);
        rows.push(vec![
            p.name.to_string(),
            fx(s),
            fx(m),
            fx_opt(idx.and_then(|i| lit.slowdown[i])),
            fx_opt(idx.and_then(|i| lit.memory[i])),
        ]);
    }
    rows.push(vec![
        "geomean".to_string(),
        fx(geomean(&slowdowns)),
        fx(geomean(&memories)),
        fx(lit.geomean_slowdown()),
        fx(lit.geomean_memory()),
    ]);
    println!("{}", table(&rows));
    println!("Character check: overheads on pointer-dense benchmarks even when");
    println!("allocation-light (povray/mcf effect, §6.6); no sweeps anywhere.");
}
