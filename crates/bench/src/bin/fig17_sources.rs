//! Figure 17: sources of overhead — six partial versions of MineSweeper on
//! the five most affected benchmarks (dealII, gcc, omnetpp, perlbench,
//! xalancbmk): Base -> +Unmap+Zero -> +Quarantine -> +Concurrency ->
//! +Sweep -> +Failed Frees.

use minesweeper::MsConfig;
use ms_bench::{geomean_memory, geomean_slowdown, run_suite};
use sim::report::{fx, table};
use sim::System;
use workloads::spec2006;

fn main() {
    println!("== Figure 17: sources of overheads (partial versions) ==\n");
    let names = ["dealII", "gcc", "omnetpp", "perlbench", "xalancbmk"];
    let profiles: Vec<_> =
        names.iter().map(|n| spec2006::by_name(n).expect("benchmark exists")).collect();
    let ladder = [
        ("base", MsConfig::partial_base()),
        ("+unmap+zero", MsConfig::partial_unmap_zero()),
        ("+quarantine", MsConfig::partial_quarantine()),
        ("+concurrency", MsConfig::partial_concurrency()),
        ("+sweep", MsConfig::partial_sweep()),
        ("+failed-frees", MsConfig::partial_full()),
    ];
    let systems: Vec<System> =
        ladder.iter().map(|&(_, cfg)| System::MineSweeper(cfg)).collect();
    let rows = run_suite(&profiles, &systems);

    for (metric, title) in
        [("slowdown", "Figure 17a: time"), ("memory", "Figure 17b: memory")]
    {
        println!("-- {title} --\n");
        let mut out = vec![{
            let mut h = vec!["benchmark".to_string()];
            h.extend(ladder.iter().map(|&(n, _)| n.to_string()));
            h
        }];
        for r in &rows {
            let mut line = vec![r.profile.name.to_string()];
            for i in 0..ladder.len() {
                line.push(fx(if metric == "slowdown" { r.slowdown(i) } else { r.memory(i) }));
            }
            out.push(line);
        }
        let mut gm = vec!["geomean".to_string()];
        for i in 0..ladder.len() {
            gm.push(fx(if metric == "slowdown" {
                geomean_slowdown(&rows, i)
            } else {
                geomean_memory(&rows, i)
            }));
        }
        out.push(gm);
        println!("{}", table(&out));
    }
    println!("Paper waypoints (these 5 benchmarks): base 1.011x/1.002x;");
    println!("+unmap+zero 1.058x/0.973x; +quarantine 1.179x/1.148x; full ~1.394x memory.");
}
