//! §7 portability experiment: "MineSweeper can be easily integrated with
//! any allocator: we have also built a Scudo implementation at 4.4 %
//! overhead." Runs SPEC CPU2006 over the Scudo substrate, with and without
//! the (unchanged) MineSweeper layer.

use ms_bench::{maybe_quick, SEED};
use sim::report::{fx, table};
use sim::{geomean, run, System};

fn main() {
    println!("== Section 7: MineSweeper over Scudo ==\n");
    let profiles = maybe_quick(workloads::spec2006::all());
    let mut slowdowns = Vec::new();
    let mut memories = Vec::new();
    let mut rows = vec![vec![
        "benchmark".to_string(),
        "slowdown vs scudo".into(),
        "memory vs scudo".into(),
        "sweeps".into(),
    ]];
    for p in &profiles {
        eprintln!("  running {} (scudo baseline + layered)...", p.name);
        let base = run(p, System::ScudoBaseline, SEED);
        let layered = run(p, System::minesweeper_scudo(), SEED);
        let s = layered.slowdown_vs(&base);
        let m = layered.memory_overhead_vs(&base);
        slowdowns.push(s);
        memories.push(m);
        rows.push(vec![
            p.name.to_string(),
            fx(s),
            fx(m),
            layered.sweeps.to_string(),
        ]);
    }
    rows.push(vec![
        "geomean".to_string(),
        fx(geomean(&slowdowns)),
        fx(geomean(&memories)),
        String::new(),
    ]);
    println!("{}", table(&rows));
    println!("Paper: 4.4% overhead (1.044x) for the Scudo implementation.");
    println!("Note: relative overhead is lower than over JeMalloc because Scudo's");
    println!("hardened baseline is itself slower — the same effect the paper sees.");
}
