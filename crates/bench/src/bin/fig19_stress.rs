//! Figure 19: mimalloc-bench stress tests — time and memory under extreme
//! allocation rates. Paper geomeans: MineSweeper 2.7x time / 4.0x memory;
//! MarkUs 6.7x / 1.7x; FFmalloc 2.16x / 7.2x; worst cases 31x/27x (MS),
//! 121x (MarkUs), 97x (FFmalloc memory).

use ms_bench::{compared_systems, geomean_memory, geomean_slowdown, run_suite};
use sim::report::{fx, table};

fn main() {
    println!("== Figure 19: mimalloc-bench stress tests ==\n");
    let profiles = workloads::mimalloc_bench::all();
    let rows = run_suite(&profiles, &compared_systems());

    for (metric, title) in
        [("slowdown", "Figure 19a: time"), ("memory", "Figure 19b: average memory")]
    {
        println!("-- {title} --\n");
        let mut out = vec![vec![
            "benchmark".to_string(),
            "markus".into(),
            "ffmalloc".into(),
            "minesweeper".into(),
        ]];
        let mut worst = [0.0f64; 3];
        for r in &rows {
            let v = |i| if metric == "slowdown" { r.slowdown(i) } else { r.memory(i) };
            for (i, w) in worst.iter_mut().enumerate() {
                *w = w.max(v(i));
            }
            out.push(vec![r.profile.name.to_string(), fx(v(0)), fx(v(1)), fx(v(2))]);
        }
        let gm = |i| {
            if metric == "slowdown" { geomean_slowdown(&rows, i) } else { geomean_memory(&rows, i) }
        };
        out.push(vec!["geomean".to_string(), fx(gm(0)), fx(gm(1)), fx(gm(2))]);
        out.push(vec![
            "worst".to_string(),
            fx(worst[0]),
            fx(worst[1]),
            fx(worst[2]),
        ]);
        println!("{}", table(&out));
    }
    println!("Shape checks: MarkUs worst in time, FFmalloc good here (FIFO frees),");
    println!("MineSweeper bounded by the allocation-pause valve.");
}
