//! Soak test: randomized (profile, system, seed) matrix, asserting the
//! cross-cutting invariants on every run. Usage:
//!
//! ```sh
//! cargo run --release -p ms-bench --bin soak -- [iterations]
//! ```

use sim::{run, System};
use workloads::{LifetimeDist, Profile, Rng, SizeDist};

fn random_profile(rng: &mut Rng) -> Profile {
    Profile {
        name: "soak",
        total_allocs: rng.range(500, 8_000),
        cycles_per_alloc: rng.range(50, 20_000),
        size_dist: match rng.below(3) {
            0 => SizeDist::Uniform(8, rng.range(64, 8_192)),
            1 => SizeDist::LogNormal {
                median: rng.range(16, 2_048),
                sigma: 2.0 + rng.f64() * 2.0,
                cap: 256 * 1024,
            },
            _ => SizeDist::Mixture(vec![
                (0.9, SizeDist::LogNormal { median: 64, sigma: 2.5, cap: 8_192 }),
                (0.1, SizeDist::Uniform(16 * 1024, 256 * 1024)),
            ]),
        },
        lifetime: LifetimeDist::Mixture(vec![
            (0.8, LifetimeDist::Exp(1.0 + rng.f64() * 2_000.0)),
            (0.15, LifetimeDist::Exp(1.0 + rng.f64() * 20_000.0)),
            (0.05, LifetimeDist::Permanent),
        ]),
        ptr_density: rng.f64(),
        false_ptr_rate: rng.f64() * 0.002,
        dangling_rate: rng.f64() * 0.05,
        phases: 1 + rng.below(6) as u32,
        phase_frac: rng.f64() * 0.4,
        straggler_rate: rng.f64() * 0.05,
        cache_sensitivity: rng.f64() * 1.5,
        ..Profile::demo()
    }
}

fn main() {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let systems = [
        System::Baseline,
        System::minesweeper_default(),
        System::minesweeper_mostly(),
        System::markus_default(),
        System::FfMalloc,
        System::ScudoBaseline,
        System::minesweeper_scudo(),
        System::CrCount,
        System::Oscar,
        System::PSweeper,
        System::DangSan,
    ];
    let mut rng = Rng::new(0x50a6_2022);
    let mut runs = 0u64;
    for i in 0..iterations {
        let profile = random_profile(&mut rng);
        let seed = rng.next_u64();
        let base = run(&profile, System::Baseline, seed);
        assert_eq!(base.allocs, profile.total_allocs);
        for &sys in &systems {
            let m = run(&profile, sys, seed);
            runs += 1;
            assert_eq!(m.allocs, profile.total_allocs, "{}: allocs", sys.label());
            assert_eq!(m.frees, profile.total_allocs, "{}: frees", sys.label());
            let slowdown = m.slowdown_vs(&base);
            assert!(
                (0.4..100.0).contains(&slowdown),
                "{}: slowdown {slowdown} out of bounds (iter {i})",
                sys.label()
            );
            assert!(m.peak_rss >= m.rss_series.iter().map(|&(_, r)| r).max().unwrap_or(0));
        }
        println!(
            "iter {i:>3}: allocs={:<6} cpa={:<6} ptr={:.2} ok ({} runs so far)",
            profile.total_allocs, profile.cycles_per_alloc, profile.ptr_density, runs
        );
    }
    println!("soak passed: {runs} randomized runs, all invariants held");
}
