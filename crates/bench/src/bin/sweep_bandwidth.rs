//! Raw sweep-bandwidth measurement: serial and parallel marking, naive
//! (seed) shadow map vs the atomic radix shadow map, scalar vs SIMD
//! kernels, static shares vs work stealing — in words/second.
//!
//! Configurations over the same default fixture — a zero-on-free
//! steady-state heap: contiguous freed-and-zeroed 512 B blocks (just
//! under half the heap) interleaved with live blocks holding LCG-placed
//! pointers (1 word in 7) amid nonzero junk:
//!
//! * `naive_serial` — the seed's `HashMap`-of-chunks map
//!   ([`NaiveShadowMap`]), one thread;
//! * `naive_parallel_hN` — the seed's §4.4 scheme: N+1 threads each
//!   marking into a **private** naive map, then a serial union merge;
//! * `atomic_serial` — the pre-SIMD production loop, preserved here as
//!   the scalar reference: one `scan_page` probe per page slice, then a
//!   per-word `!= 0` + `heap_contains` test into a [`ShadowWriter`];
//! * `simd_serial` — the production [`Marker`] path with the chunked
//!   SIMD kernel at its auto-dispatched tier (AVX2 where available);
//! * `swar_serial` — the same path forced to the portable SWAR tier,
//!   what non-x86 (or pre-SSE2) hosts would run;
//! * `simd_serial_nullsink` — `simd_serial` with the sweep tracer
//!   engaged on a null sink: the per-phase emission cost;
//! * `steal_parallel_hN` — [`parallel_mark_opts`]: N+1 threads claiming
//!   64-page chunks off one atomic work queue into one shared map;
//! * `share_parallel_hN` — the same machinery with the chunk size blown
//!   up to one contiguous share per thread: the old static split, kept
//!   as the stealing-off comparison point;
//! * `incremental_dP` — the incremental sweep: a [`PageCache`] primed by
//!   a cold sweep, then each rep retires a P%-dirty page set and replays
//!   the digests of the clean remainder instead of re-reading it;
//! * `incremental_d50_swar` — the 50%-dirty row on the SWAR tier (the
//!   dirty mix re-scans through the kernel, so the tier shows up here);
//! * `incremental_filtered_d5` — incremental plus a [`CandidateFilter`]
//!   covering every 8th page (a sparse quarantine), gating shadow writes;
//! * `forensics_off` / `forensics_sampled_s8` / `forensics_full` — the
//!   serial accel path with an [`EdgeRecorder`] over a synthetic
//!   every-8th-page quarantine;
//! * `*_sparse` — scalar/SIMD/SWAR serial rows over a second, zero-heavy
//!   fixture (1 word in 64 nonzero, like a real mostly-freed heap) where
//!   the kernel's lane-OR zero-chunk early-out dominates;
//! * `*_dense` — scalar/SIMD serial rows over an all-nonzero strided
//!   fixture: no zero chunks to skip (the kernel's worst case) and
//!   perfectly predictable branches (the scalar loop's best case), so
//!   this row isolates the vectorised range test alone;
//! * `arenas_nK_{serial,barrier_h6,sched_h6}` — the default fixture cut
//!   into K tenant mini-heaps (each its own address space and plan, the
//!   sharded-quarantine shape). `serial` marks them one after another on
//!   one thread; `barrier_h6` gives each arena its own 6-helper
//!   [`parallel_mark_opts`] round, paying K join barriers; `sched_h6`
//!   batches all K plans through **one** [`parallel_mark_pool`] round —
//!   one work-stealing cursor, one join — which is exactly what the
//!   sweep scheduler's coalesced rounds run.
//!
//! Helper counts are reported as requested *and* effective — the
//! production path clamps to [`effective_helper_count`], and any parallel
//! row whose clamp leaves zero helpers is flagged `degraded` in the JSON
//! so a 1-CPU container can't masquerade as a scaling measurement.
//!
//! Timing is `std::time::Instant` only (no harness dependency); the best
//! of `--reps` runs is reported, which is the right statistic for a
//! bandwidth measurement on a shared machine. Results are printed as a
//! table and written as JSON (default `BENCH_sweep.json`, `--out PATH`).

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Instant, SystemTime};

use minesweeper::telemetry::{
    EventKind, Histogram, NullSink, Registry, Tracer, SNAPSHOT_SCHEMA_VERSION,
};
use minesweeper::{
    effective_helper_count, parallel_mark_opts, parallel_mark_pool, CandidateFilter,
    EdgeRecorder, ForensicsMode, MarkAccel, Marker, NaiveShadowMap, PageCache, ParallelMarkOpts,
    PoolMarkJob, PoolMarkOpts, QEntry, ScanTier, ShadowMap, SweepPlan, SweepProf,
};
use vmem::{Addr, AddrSpace, Layout, PageIdx, PAGE_SIZE, WORD_SIZE};

/// Subsystem label for the bench's own instruments.
const BENCH_SUBSYSTEM: &str = "bench";

/// Schema version of `BENCH_trajectory.jsonl` lines.
const TRAJECTORY_SCHEMA: u32 = 1;

/// `--handicap NAME:FACTOR` multipliers, applied to each measured rep of
/// the matching config. Exists so CI can inject a synthetic regression
/// and prove the `ms-report --compare` gate actually rejects it.
static HANDICAPS: OnceLock<Vec<(String, f64)>> = OnceLock::new();

fn handicap_for(name: &str) -> f64 {
    HANDICAPS
        .get()
        .and_then(|h| h.iter().find(|(n, _)| n == name))
        .map_or(1.0, |&(_, f)| f)
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout (the trajectory line must never fail the bench).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// UTC timestamp (`YYYY-MM-DDTHH:MM:SSZ`) from the system clock — no
/// chrono dependency; civil-from-days per Howard Hinnant's algorithm.
fn utc_now() -> String {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (h, m, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// The default fixture: a heap in the zero-on-free steady state the
/// sweep actually runs against (§4.1). Memory is modelled as 64-word
/// (512 B) allocation blocks — just under half are freed, and therefore
/// all zero in contiguous runs the lane-OR early-out can skip; the rest
/// are live blocks where 1 word in 7 is a heap pointer and the others
/// are nonzero junk. Placement comes from a fixed LCG, so pointer
/// positions are unpredictable to the branch predictor (a real heap is
/// not strided) while the fixture stays deterministic across runs.
fn sweep_fixture(pages: u64) -> (AddrSpace, SweepPlan) {
    let mut space = AddrSpace::new();
    let base = space.reserve_heap(pages);
    space.map(base, pages).unwrap();
    let mut r: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lcg = || {
        r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        r >> 11
    };
    for block in 0..pages * 512 / 64 {
        if lcg() % 100 < 45 {
            continue; // freed-and-zeroed block: mapped pages start zeroed
        }
        for j in 0..64u64 {
            let v = if lcg() % 7 == 0 {
                base.raw() + (lcg() % (pages * 512)) * 8
            } else {
                (lcg() % 0xffff_ffff) + 1 // nonzero junk below the heap base
            };
            space.write_word(base + (block * 64 + j) * 8, v).unwrap();
        }
    }
    (space, SweepPlan::from_ranges(vec![(base, pages * PAGE_SIZE as u64)]))
}

/// Worst-case fixture for the kernel: every word nonzero (1 in 7 a heap
/// pointer on a regular stride), so the zero early-out never fires and
/// any SIMD win comes from the vectorised range test alone — and the
/// stride makes the scalar loop's branches perfectly predictable, its
/// best case.
fn dense_fixture(pages: u64) -> (AddrSpace, SweepPlan) {
    let mut space = AddrSpace::new();
    let base = space.reserve_heap(pages);
    space.map(base, pages).unwrap();
    for i in 0..pages * 512 {
        let v = if i % 7 == 0 { base.raw() + (i * 64) % (pages * 4096) } else { i };
        space.write_word(base + i * 8, v).unwrap();
    }
    (space, SweepPlan::from_ranges(vec![(base, pages * PAGE_SIZE as u64)]))
}

/// A zero-heavy fixture: 1 word in 64 is nonzero (every 8th of those a
/// heap pointer), the rest are zero — the post-zero-on-free steady state
/// the lane-OR early-out is built for.
fn sparse_fixture(pages: u64) -> (AddrSpace, SweepPlan) {
    let mut space = AddrSpace::new();
    let base = space.reserve_heap(pages);
    space.map(base, pages).unwrap();
    for i in (0..pages * 512).step_by(64) {
        let v = if i % 512 == 0 { base.raw() + (i * 64) % (pages * 4096) } else { i + 1 };
        space.write_word(base + i * 8, v).unwrap();
    }
    (space, SweepPlan::from_ranges(vec![(base, pages * PAGE_SIZE as u64)]))
}

/// Splits the plan into `threads` contiguous word-aligned byte shares
/// (the seed's naive-parallel split).
fn split_shares(plan: &SweepPlan, threads: usize) -> Vec<Vec<(Addr, u64)>> {
    let share = plan
        .total_bytes()
        .div_ceil(threads as u64)
        .next_multiple_of(WORD_SIZE as u64)
        .max(WORD_SIZE as u64);
    let mut shares: Vec<Vec<(Addr, u64)>> = vec![Vec::new(); threads];
    let mut t = 0;
    let mut filled = 0u64;
    for &(base, len) in plan.ranges() {
        let (mut base, mut len) = (base, len);
        while len > 0 {
            let room = share.saturating_sub(filled);
            if room == 0 {
                t = (t + 1).min(threads - 1);
                filled = 0;
                continue;
            }
            let take = len.min(room);
            shares[t].push((base, take));
            base = base.add_bytes(take);
            len -= take;
            filled += take;
        }
    }
    shares
}

/// The seed's marking loop over one share into a naive map.
fn naive_mark_share(
    space: &AddrSpace,
    layout: &Layout,
    share: &[(Addr, u64)],
    shadow: &mut NaiveShadowMap,
) {
    for &(base, len) in share {
        let mut off = 0;
        while off < len {
            let addr = base.add_bytes(off);
            let page_end = addr.page().next().base().offset_from(base).min(len);
            if let Ok(Some(page)) = space.scan_page(addr.page()) {
                let w0 = addr.word_in_page();
                let w1 = w0 + ((page_end - off) / WORD_SIZE as u64) as usize;
                for &value in &page[w0..w1] {
                    if layout.heap_contains(Addr::new(value)) {
                        shadow.mark(Addr::new(value));
                    }
                }
            }
            off = page_end;
        }
    }
}

/// The pre-SIMD production loop: the scalar baseline every SIMD row is
/// judged against (ISSUE 6 acceptance: `simd_serial` ≥ 2× this). Same
/// `scan_page` slices and [`ShadowWriter`] as the production path; only
/// the per-word zero test + `heap_contains` differ from the kernel.
fn scalar_mark(space: &AddrSpace, layout: &Layout, plan: &SweepPlan, shadow: &ShadowMap) -> u64 {
    let mut writer = shadow.writer();
    for &(base, len) in plan.ranges() {
        let mut off = 0;
        while off < len {
            let addr = base.add_bytes(off);
            let page_end = addr.page().next().base().offset_from(base).min(len);
            if let Ok(Some(page)) = space.scan_page(addr.page()) {
                let w0 = addr.word_in_page();
                let w1 = w0 + ((page_end - off) / WORD_SIZE as u64) as usize;
                for &value in &page[w0..w1] {
                    if value == 0 {
                        continue;
                    }
                    let target = Addr::new(value);
                    if layout.heap_contains(target) {
                        writer.mark(target);
                    }
                }
            }
            off = page_end;
        }
    }
    drop(writer);
    shadow.marked_count()
}

/// One measured configuration.
struct Sample {
    name: String,
    /// Helper threads as requested on the config.
    helpers: usize,
    /// Helper threads actually spawned after the hardware clamp.
    effective_helpers: usize,
    /// Dirty-page percentage for incremental configs, `None` otherwise.
    dirty_pct: Option<u32>,
    /// A parallel config whose clamp left zero helpers: the row ran
    /// serially and must not be read as a scaling measurement.
    degraded: bool,
    best_secs: f64,
    words_per_sec: f64,
    marked: u64,
}

fn measure(
    name: &str,
    helpers: usize,
    total_words: u64,
    reps: u32,
    registry: &Registry,
    mut run: impl FnMut() -> u64,
) -> Sample {
    // Per-rep durations land in a log2 histogram, so the exported metrics
    // carry the whole distribution, not just the best-of statistic.
    let rep_us: Histogram = registry.histogram(BENCH_SUBSYSTEM, &format!("{name}_us"));
    let handicap = handicap_for(name);
    let mut best = f64::INFINITY;
    let mut marked = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        marked = run();
        let secs = t0.elapsed().as_secs_f64() * handicap;
        rep_us.record((secs * 1e6) as u64);
        best = best.min(secs);
    }
    let effective = effective_helper_count(helpers);
    Sample {
        name: name.to_string(),
        helpers,
        effective_helpers: effective,
        dirty_pct: None,
        degraded: helpers > 0 && effective == 0,
        best_secs: best,
        words_per_sec: total_words as f64 / best,
        marked,
    }
}

fn main() {
    let mut pages = 2048u64; // 8 MiB, matching the micro benches
    let mut reps = 5u32;
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut metrics_path = "BENCH_sweep_metrics.json".to_string();
    let mut trajectory_path: Option<String> = None;
    let mut trajectory_configs: Option<Vec<String>> = None;
    let mut profiler = false;
    let mut handicaps: Vec<(String, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pages" => pages = args.next().expect("--pages N").parse().expect("number"),
            "--reps" => reps = args.next().expect("--reps N").parse().expect("number"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--metrics-out" => metrics_path = args.next().expect("--metrics-out PATH"),
            "--trajectory" => trajectory_path = Some(args.next().expect("--trajectory PATH")),
            "--trajectory-configs" => {
                let spec = args.next().expect("--trajectory-configs NAME[,NAME...]");
                let names: Vec<String> =
                    spec.split(',').filter(|s| !s.is_empty()).map(String::from).collect();
                assert!(!names.is_empty(), "--trajectory-configs needs at least one name");
                trajectory_configs = Some(names);
            }
            "--profiler" => profiler = true,
            "--handicap" => {
                let spec = args.next().expect("--handicap NAME:FACTOR");
                let (name, factor) = spec.split_once(':').expect("--handicap NAME:FACTOR");
                let factor: f64 = factor.parse().expect("handicap factor");
                assert!(factor >= 1.0, "handicap must slow down, not speed up");
                handicaps.push((name.to_string(), factor));
            }
            "--quick" => {
                pages = 256;
                reps = 2;
            }
            other => {
                eprintln!(
                    "usage: sweep_bandwidth [--pages N] [--reps N] [--out PATH] \
                     [--metrics-out PATH] [--trajectory PATH] \
                     [--trajectory-configs NAME[,NAME...]] [--profiler] \
                     [--handicap NAME:FACTOR] [--quick]"
                );
                panic!("unknown argument {other:?}");
            }
        }
    }
    HANDICAPS.set(handicaps).expect("set once");
    let registry = Registry::new();
    // `--profiler`: attribute the production rows (simd_serial and the
    // work-stealing parallel marks) through the sweep profiler. The off
    // default leaves `prof: None` — the exact single-branch production
    // path — so an off-vs-on run pair measures the enabled overhead.
    let sweep_prof = profiler.then(|| SweepProf::register(&registry));
    let prof = sweep_prof.as_ref();
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    if cpus <= 1 {
        eprintln!(
            "warning: 1 CPU available — parallel rows run with zero helpers and are \
             flagged \"degraded\" in the JSON"
        );
    }

    let (mut space, plan) = sweep_fixture(pages);
    let layout = *space.layout();
    let total_words = pages * (PAGE_SIZE / WORD_SIZE) as u64;
    let helper_counts = [1usize, 3, 6];
    let mut samples: Vec<Sample> = Vec::new();

    // Seed scheme, serial: naive map, direct scan loop.
    samples.push(measure("naive_serial", 0, total_words, reps, &registry, || {
        let mut shadow = NaiveShadowMap::new();
        naive_mark_share(&space, &layout, plan.ranges(), &mut shadow);
        shadow.marked_count()
    }));

    // Seed scheme, parallel: per-thread naive maps + union merge.
    for &h in &helper_counts {
        let shares = split_shares(&plan, h + 1);
        let space_ref = &space;
        let layout_ref = &layout;
        samples.push(measure(&format!("naive_parallel_h{h}"), h, total_words, reps, &registry, || {
            let maps: Vec<NaiveShadowMap> = std::thread::scope(|scope| {
                shares
                    .iter()
                    .map(|share| {
                        scope.spawn(move || {
                            let mut shadow = NaiveShadowMap::new();
                            naive_mark_share(space_ref, layout_ref, share, &mut shadow);
                            shadow
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|hnd| hnd.join().expect("marker thread"))
                    .collect()
            });
            let mut merged = NaiveShadowMap::new();
            for m in &maps {
                merged.union(m);
            }
            merged.marked_count()
        }));
    }

    // Scalar reference: the pre-SIMD production loop (atomic radix map,
    // per-word test). The SIMD acceptance ratio is measured against this.
    samples.push(measure("atomic_serial", 0, total_words, reps, &registry, || {
        let shadow = ShadowMap::new();
        scalar_mark(&space, &layout, &plan, &shadow)
    }));

    // Production Marker path: the chunked SIMD kernel at its
    // auto-dispatched tier, and forced down to the portable SWAR tier.
    samples.push(measure("simd_serial", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        let mut accel = MarkAccel { prof, ..MarkAccel::default() };
        Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
        shadow.marked_count()
    }));
    samples.push(measure("swar_serial", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        let mut accel = MarkAccel {
            filter: None,
            cache: None,
            qgen: 0,
            forensics: None,
            tier: Some(ScanTier::Swar),
            prof: None,
        };
        Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
        shadow.marked_count()
    }));

    // SIMD serial again, but with the sweep tracer engaged on a null
    // sink — the production layer's per-phase emission cost (a stopwatch
    // and one event per mark phase, never per word). The acceptance bar:
    // within 2% of the untraced run.
    let mut tracer = Tracer::disabled();
    tracer.set_sink(Box::new(NullSink));
    samples.push(measure("simd_serial_nullsink", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        let sw = tracer.stopwatch();
        Marker::new(plan.clone()).run_to_end(&mut space, &layout, &mut shadow);
        let marked = shadow.marked_count();
        tracer.emit(|| EventKind::MarkPhase {
            sweep: 0,
            bytes: total_words * WORD_SIZE as u64,
            words: total_words,
            skipped_bytes: 0,
            marked_granules: marked,
            filter_rejects: 0,
            wall_ns: sw.elapsed_ns(),
            prof: None,
        });
        marked
    }));

    // Work-stealing parallel mark: one shared atomic map, 64-page chunks
    // off an atomic cursor. `share_parallel` runs the same machinery with
    // one giant chunk per thread — the old static contiguous split — as
    // the stealing-off comparison point.
    for &h in &helper_counts {
        samples.push(measure(&format!("steal_parallel_h{h}"), h, total_words, reps, &registry, || {
            let opts =
                ParallelMarkOpts { helper_threads: h, prof, ..ParallelMarkOpts::default() };
            parallel_mark_opts(&space, &plan, &layout, &opts).0.marked_count()
        }));
    }
    for &h in &helper_counts {
        let share_pages = pages.div_ceil(h as u64 + 1).max(1);
        samples.push(measure(&format!("share_parallel_h{h}"), h, total_words, reps, &registry, || {
            let opts = ParallelMarkOpts {
                helper_threads: h,
                chunk_pages: Some(share_pages),
                ..ParallelMarkOpts::default()
            };
            parallel_mark_opts(&space, &plan, &layout, &opts).0.marked_count()
        }));
    }

    // Incremental sweep: prime a page-summary cache with one cold sweep,
    // then each rep retires the dirty fraction (every strideth page) and
    // replays the clean remainder. Re-scanned pages re-record digests, so
    // reps are idempotent. d100 retires everything — pure cache overhead.
    // The 50% mix additionally runs on the forced SWAR tier: half the
    // fixture re-scans through the kernel, so the tier is visible here.
    let heap_base = plan.ranges()[0].0;
    let mut epoch = 0u64;
    for (pct, tier) in [(5u32, None), (50, None), (50, Some(ScanTier::Swar)), (100, None)] {
        let stride = (100 / pct) as u64;
        let dirty: Vec<PageIdx> = (0..pages)
            .filter(|i| i % stride == 0)
            .map(|i| heap_base.add_bytes(i * PAGE_SIZE as u64).page())
            .collect();
        let mut cache = PageCache::new();
        epoch += 1;
        cache.begin_sweep(&plan, &[], epoch);
        {
            let mut shadow = ShadowMap::new();
            let mut accel =
                MarkAccel { filter: None, cache: Some(&mut cache), qgen: 0, forensics: None, tier, prof: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
        }
        let name = match tier {
            None => format!("incremental_d{pct}"),
            Some(t) => format!("incremental_d{pct}_{}", t.as_str()),
        };
        let mut s = measure(&name, 0, total_words, reps, &registry, || {
            epoch += 1;
            cache.begin_sweep(&plan, &dirty, epoch);
            let mut shadow = ShadowMap::new();
            let mut accel =
                MarkAccel { filter: None, cache: Some(&mut cache), qgen: 0, forensics: None, tier, prof: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
            shadow.marked_count()
        });
        s.dirty_pct = Some(pct);
        samples.push(s);
    }

    // Candidate filter over every 8th page — a sparse quarantine. The
    // filtered mark set is a strict subset, so it checks against its own
    // serial reference, not the full-sweep one.
    let filter = CandidateFilter::build(
        (0..pages)
            .filter(|i| i % 8 == 0)
            .map(|i| (heap_base.add_bytes(i * PAGE_SIZE as u64), PAGE_SIZE as u64)),
    );
    let expect_filtered = {
        let mut shadow = ShadowMap::new();
        let mut accel = MarkAccel {
            filter: Some(&filter),
            cache: None,
            qgen: 0,
            forensics: None,
            tier: None,
            prof: None,
        };
        Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
        shadow.marked_count()
    };
    {
        let stride = 20u64; // 5% dirty
        let dirty: Vec<PageIdx> = (0..pages)
            .filter(|i| i % stride == 0)
            .map(|i| heap_base.add_bytes(i * PAGE_SIZE as u64).page())
            .collect();
        let mut cache = PageCache::new();
        epoch += 1;
        cache.begin_sweep(&plan, &[], epoch);
        {
            let mut shadow = ShadowMap::new();
            let mut accel = MarkAccel {
                filter: Some(&filter),
                cache: Some(&mut cache),
                qgen: 0,
                forensics: None,
                tier: None,
                prof: None,
            };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
        }
        let mut s = measure("incremental_filtered_d5", 0, total_words, reps, &registry, || {
            epoch += 1;
            cache.begin_sweep(&plan, &dirty, epoch);
            let mut shadow = ShadowMap::new();
            let mut accel = MarkAccel {
                filter: Some(&filter),
                cache: Some(&mut cache),
                qgen: 0,
                forensics: None,
                tier: None,
                prof: None,
            };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
            shadow.marked_count()
        });
        s.dirty_pct = Some(5);
        samples.push(s);
    }

    // Forensics: the serial accel path with provenance recording over a
    // synthetic quarantine (every 8th page is one page-sized candidate —
    // sparse, like a real locked set). Off measures the disabled
    // single-branch dispatch cost; sampled and full pay the per-hit
    // binary search + atomic update. Recording never touches the shadow
    // map, so every config checks against the full-sweep mark set.
    let candidates: Vec<QEntry> = (0..pages)
        .filter(|i| i % 8 == 0)
        .map(|i| QEntry::new(heap_base.add_bytes(i * PAGE_SIZE as u64), PAGE_SIZE as u64))
        .collect();
    for (name, mode) in [
        ("forensics_off", ForensicsMode::Off),
        ("forensics_sampled_s8", ForensicsMode::Sampled(8)),
        ("forensics_full", ForensicsMode::Full),
    ] {
        let recorder = EdgeRecorder::new(&candidates, mode);
        samples.push(measure(name, 0, total_words, reps, &registry, || {
            let mut shadow = ShadowMap::new();
            let mut accel = MarkAccel {
                filter: None,
                cache: None,
                qgen: 0,
                forensics: recorder.as_ref(),
                tier: None,
                prof: None,
            };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
            shadow.marked_count()
        }));
        if mode == ForensicsMode::Full {
            let rec = recorder.as_ref().expect("full mode builds a recorder");
            assert!(rec.recorded() > 0, "pointer-dense fixture must record edges");
        }
    }

    // Zero-heavy fixture: the steady state zero-on-free produces. The
    // lane-OR early-out skips whole 8-word chunks here, so these rows
    // show the kernel's best case (and the scalar loop's per-word tax).
    let (mut sparse_space, sparse_plan) = sparse_fixture(pages);
    let expect_sparse = {
        let shadow = ShadowMap::new();
        scalar_mark(&sparse_space, &layout, &sparse_plan, &shadow)
    };
    samples.push(measure("atomic_serial_sparse", 0, total_words, reps, &registry, || {
        let shadow = ShadowMap::new();
        scalar_mark(&sparse_space, &layout, &sparse_plan, &shadow)
    }));
    samples.push(measure("simd_serial_sparse", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        Marker::new(sparse_plan.clone()).run_to_end(&mut sparse_space, &layout, &mut shadow);
        shadow.marked_count()
    }));
    samples.push(measure("swar_serial_sparse", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        let mut accel = MarkAccel {
            filter: None,
            cache: None,
            qgen: 0,
            forensics: None,
            tier: Some(ScanTier::Swar),
            prof: None,
        };
        Marker::new(sparse_plan.clone()).run_to_end_accel(
            &mut sparse_space,
            &layout,
            &mut shadow,
            &mut accel,
        );
        shadow.marked_count()
    }));

    // All-nonzero fixture: the kernel's worst case and the scalar loop's
    // best case (predictable strided branches, no zero chunks to skip).
    let (mut dense_space, dense_plan) = dense_fixture(pages);
    let expect_dense = {
        let shadow = ShadowMap::new();
        scalar_mark(&dense_space, &layout, &dense_plan, &shadow)
    };
    samples.push(measure("atomic_serial_dense", 0, total_words, reps, &registry, || {
        let shadow = ShadowMap::new();
        scalar_mark(&dense_space, &layout, &dense_plan, &shadow)
    }));
    samples.push(measure("simd_serial_dense", 0, total_words, reps, &registry, || {
        let mut shadow = ShadowMap::new();
        Marker::new(dense_plan.clone()).run_to_end(&mut dense_space, &layout, &mut shadow);
        shadow.marked_count()
    }));

    // Multi-tenant shape: the fixture budget cut into K mini-heaps, each
    // its own address space and plan (disjoint tenant heaps, like the
    // sharded quarantine). Three ways to mark all K:
    //  * `serial`   — one thread, one arena after another: the naive
    //                 baseline the scheduler replaces;
    //  * `barrier_h6` — a 6-helper parallel round *per arena*, paying K
    //                 spawn/join barriers on ever-smaller plans;
    //  * `sched_h6` — all K plans batched through one
    //                 `parallel_mark_pool` round: one work-stealing
    //                 cursor, one join — a scheduler-coalesced round.
    let arena_counts = [4u64, 16, 64];
    let mut expect_arenas: Vec<(u64, u64)> = Vec::new();
    for &k in &arena_counts {
        let mini_pages = (pages / k).max(1);
        let fixtures: Vec<(AddrSpace, SweepPlan)> =
            (0..k).map(|_| sweep_fixture(mini_pages)).collect();
        let arena_words = mini_pages * (PAGE_SIZE / WORD_SIZE) as u64 * k;
        let expect_k: u64 = fixtures
            .iter()
            .map(|(sp, pl)| {
                let shadow = ShadowMap::new();
                scalar_mark(sp, sp.layout(), pl, &shadow)
            })
            .sum();
        expect_arenas.push((k, expect_k));
        samples.push(measure(
            &format!("arenas_n{k}_serial"),
            0,
            arena_words,
            reps,
            &registry,
            || {
                fixtures
                    .iter()
                    .map(|(sp, pl)| {
                        let opts = ParallelMarkOpts::default();
                        parallel_mark_opts(sp, pl, sp.layout(), &opts).0.marked_count()
                    })
                    .sum()
            },
        ));
        samples.push(measure(
            &format!("arenas_n{k}_barrier_h6"),
            6,
            arena_words,
            reps,
            &registry,
            || {
                fixtures
                    .iter()
                    .map(|(sp, pl)| {
                        let opts = ParallelMarkOpts {
                            helper_threads: 6,
                            ..ParallelMarkOpts::default()
                        };
                        parallel_mark_opts(sp, pl, sp.layout(), &opts).0.marked_count()
                    })
                    .sum()
            },
        ));
        // Shadows live across reps and are cleared in place, as the
        // arena pool keeps them between epochs — allocating 64 fresh
        // radix maps per rep would measure allocator churn, not marking.
        let mut pool_shadows: Vec<ShadowMap> = (0..k).map(|_| ShadowMap::new()).collect();
        samples.push(measure(
            &format!("arenas_n{k}_sched_h6"),
            6,
            arena_words,
            reps,
            &registry,
            || {
                for sh in &mut pool_shadows {
                    sh.clear();
                }
                let jobs: Vec<PoolMarkJob> = fixtures
                    .iter()
                    .zip(&pool_shadows)
                    .map(|((sp, pl), sh)| PoolMarkJob {
                        space: sp,
                        plan: pl,
                        shadow: sh,
                        filter: None,
                        cache: None,
                        forensics: None,
                    })
                    .collect();
                let opts = PoolMarkOpts { helper_threads: 6, ..PoolMarkOpts::default() };
                parallel_mark_pool(&jobs, &opts);
                pool_shadows.iter().map(ShadowMap::marked_count).sum()
            },
        ));
    }

    // Every full configuration must find the same mark set; filtered,
    // sparse, dense and multi-arena configurations check against their
    // own serial references.
    let expect = samples[0].marked;
    for s in &samples {
        let want = if s.name.contains("filtered") {
            expect_filtered
        } else if s.name.ends_with("_sparse") {
            expect_sparse
        } else if s.name.ends_with("_dense") {
            expect_dense
        } else if let Some(rest) = s.name.strip_prefix("arenas_n") {
            let k: u64 = rest.split('_').next().unwrap().parse().unwrap();
            expect_arenas.iter().find(|&&(kk, _)| kk == k).unwrap().1
        } else {
            expect
        };
        assert_eq!(s.marked, want, "{} disagrees on the mark set", s.name);
    }

    // Paired interleaved re-measure for the headline ratio: the scalar
    // reference and the SIMD path alternate rep by rep, so frequency
    // drift on a shared machine lands evenly on both sides instead of on
    // whichever config happened to run while the box was slow. Best-of
    // folds into the same rows the table and JSON report.
    {
        let scalar_us: Histogram = registry.histogram(BENCH_SUBSYSTEM, "atomic_serial_us");
        let simd_us: Histogram = registry.histogram(BENCH_SUBSYSTEM, "simd_serial_us");
        let mut best_scalar = f64::INFINITY;
        let mut best_simd = f64::INFINITY;
        for _ in 0..reps * 2 {
            let t0 = Instant::now();
            let shadow = ShadowMap::new();
            let marked = scalar_mark(&space, &layout, &plan, &shadow);
            let secs = t0.elapsed().as_secs_f64() * handicap_for("atomic_serial");
            scalar_us.record((secs * 1e6) as u64);
            best_scalar = best_scalar.min(secs);
            assert_eq!(marked, expect);

            let t0 = Instant::now();
            let mut shadow = ShadowMap::new();
            let mut accel = MarkAccel { prof, ..MarkAccel::default() };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &mut shadow, &mut accel);
            let secs = t0.elapsed().as_secs_f64() * handicap_for("simd_serial");
            simd_us.record((secs * 1e6) as u64);
            best_simd = best_simd.min(secs);
            assert_eq!(shadow.marked_count(), expect);
        }
        for (name, best) in [("atomic_serial", best_scalar), ("simd_serial", best_simd)] {
            let s = samples.iter_mut().find(|s| s.name == name).expect("measured above");
            if best < s.best_secs {
                s.best_secs = best;
                s.words_per_sec = total_words as f64 / best;
            }
        }
    }

    // Trajectory facts, registered once the best-of times are final
    // (counters are monotonic, so these cannot be folded mid-measure).
    // `ms-report --compare` keys on exactly these names.
    let active_tier = minesweeper::simd::active_tier().as_str();
    registry.counter(BENCH_SUBSYSTEM, "host_cpus").add(cpus as u64);
    registry.counter(BENCH_SUBSYSTEM, &format!("scan_tier_{active_tier}")).inc();
    for s in &samples {
        registry
            .counter(BENCH_SUBSYSTEM, &format!("{}_best_us", s.name))
            .add((s.best_secs * 1e6) as u64);
        if s.degraded {
            registry.counter(BENCH_SUBSYSTEM, &format!("{}_degraded", s.name)).inc();
        }
    }

    println!(
        "== sweep bandwidth: {} MiB fixture, {} marked granules, best of {}, {} cpus ==\n",
        (pages * PAGE_SIZE as u64) >> 20,
        expect,
        reps,
        cpus
    );
    println!(
        "{:<24} {:>9} {:>6} {:>12} {:>14}",
        "config", "help r/e", "dirty", "ms", "Mwords/s"
    );
    let baseline = samples[0].words_per_sec;
    for s in &samples {
        println!(
            "{:<24} {:>9} {:>6} {:>12.3} {:>14.1}   ({:.2}x naive serial){}",
            s.name,
            format!("{}/{}", s.helpers, s.effective_helpers),
            s.dirty_pct.map_or("-".to_string(), |p| format!("{p}%")),
            s.best_secs * 1e3,
            s.words_per_sec / 1e6,
            s.words_per_sec / baseline,
            if s.degraded { "  [degraded: 0 helpers]" } else { "" },
        );
    }

    // The tentpole ratio: SIMD kernel vs the pre-SIMD scalar loop on the
    // steady-state fixture (ISSUE 6 acceptance: ≥ 2× on 1 CPU). The dense
    // worst-case ratio rides along for transparency.
    let by_name = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
    let simd_ratio = by_name("simd_serial").words_per_sec / by_name("atomic_serial").words_per_sec;
    let dense_ratio =
        by_name("simd_serial_dense").words_per_sec / by_name("atomic_serial_dense").words_per_sec;
    println!("\nsimd_serial vs atomic_serial (scalar reference): {simd_ratio:.2}x");
    println!("simd_serial_dense vs atomic_serial_dense (no-zero worst case): {dense_ratio:.2}x");

    // The sharding headline: one scheduler-coalesced pooled round vs the
    // naive one-arena-after-another serial loop (and vs per-arena
    // parallel rounds, isolating the batching win from raw parallelism).
    // Degraded rows print their ratio for transparency but a 1-CPU host
    // cannot claim a scaling result.
    let mut arena_ratio_json = String::new();
    for &(k, _) in &expect_arenas {
        let sched = by_name(&format!("arenas_n{k}_sched_h6"));
        let vs_serial = sched.words_per_sec / by_name(&format!("arenas_n{k}_serial")).words_per_sec;
        let vs_barrier =
            sched.words_per_sec / by_name(&format!("arenas_n{k}_barrier_h6")).words_per_sec;
        println!(
            "arenas_n{k}_sched_h6 vs serial: {vs_serial:.2}x, vs per-arena barriers: {vs_barrier:.2}x{}",
            if sched.degraded { "  [degraded: 0 helpers]" } else { "" }
        );
        let comma = if arena_ratio_json.is_empty() { "" } else { ", " };
        let _ = write!(
            arena_ratio_json,
            "{comma}\"n{k}_sched_vs_serial\": {vs_serial:.3}, \"n{k}_sched_vs_barrier\": {vs_barrier:.3}"
        );
    }

    // Tracing-overhead ratio: traced (null sink) vs untraced SIMD serial.
    let null_sink_ratio =
        by_name("simd_serial_nullsink").words_per_sec / by_name("simd_serial").words_per_sec;

    let rev = git_rev();
    let utc = utc_now();
    let tier_env = std::env::var(minesweeper::simd::TIER_ENV).unwrap_or_default();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"fixture\": {{ \"pages\": {pages}, \"total_words\": {total_words}, \"marked_granules\": {expect}, \"sparse_marked_granules\": {expect_sparse}, \"reps\": {reps}, \"cpus\": {cpus} }},");
    let _ = writeln!(
        json,
        "  \"host\": {{ \"cpus\": {cpus}, \"scan_tier\": \"{active_tier}\", \"scan_tier_env\": \"{tier_env}\", \"git_rev\": \"{rev}\", \"utc\": \"{utc}\", \"profiler\": {profiler} }},"
    );
    let _ = writeln!(
        json,
        "  \"kernel\": {{ \"active_tier\": \"{active_tier}\", \"simd_vs_scalar\": {simd_ratio:.3}, \"simd_vs_scalar_dense\": {dense_ratio:.3} }},"
    );
    let _ = writeln!(
        json,
        "  \"telemetry\": {{ \"schema_version\": {SNAPSHOT_SCHEMA_VERSION}, \"null_sink_vs_untraced\": {null_sink_ratio:.3}, \"metrics_out\": \"{metrics_path}\" }},"
    );
    let _ = writeln!(json, "  \"arenas\": {{ {arena_ratio_json} }},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let dirty = s.dirty_pct.map_or("null".to_string(), |p| p.to_string());
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"requested_helpers\": {}, \"effective_helpers\": {}, \"degraded\": {}, \"dirty_pct\": {dirty}, \"best_ms\": {:.3}, \"words_per_sec\": {:.0}, \"vs_naive_serial\": {:.3} }}{comma}",
            s.name,
            s.helpers,
            s.effective_helpers,
            s.degraded,
            s.best_secs * 1e3,
            s.words_per_sec,
            s.words_per_sec / baseline
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write JSON results");
    std::fs::write(&metrics_path, registry.snapshot().to_json())
        .expect("write metrics snapshot");
    println!("\nwrote {out_path} and {metrics_path}");

    // Trajectory: one append-only JSONL line per run, so the repo keeps a
    // history `ms-report --compare` can gate against.
    if let Some(path) = trajectory_path {
        use std::io::Write as _;
        // With `--trajectory-configs`, only the named configs enter the
        // history, and degraded samples (fewer effective helpers than
        // requested) are dropped — CI gates on this file, and a degraded
        // row would poison every later drift comparison against it.
        let gating: Vec<&Sample> = samples
            .iter()
            .filter(|s| match &trajectory_configs {
                None => true,
                Some(names) => names.contains(&s.name) && !s.degraded,
            })
            .collect();
        let skipped = samples.len() - gating.len();
        if gating.is_empty() {
            println!(
                "trajectory: no rows left after --trajectory-configs filter \
                 ({skipped} skipped) — nothing appended to {path}"
            );
        } else {
            let mut line = format!(
                "{{ \"schema\": {TRAJECTORY_SCHEMA}, \"utc\": \"{utc}\", \"git_rev\": \"{rev}\", \
                 \"host_cpus\": {cpus}, \"scan_tier\": \"{active_tier}\", \"pages\": {pages}, \
                 \"reps\": {reps}, \"profiler\": {profiler}, \"rows\": ["
            );
            for (i, s) in gating.iter().enumerate() {
                let comma = if i + 1 < gating.len() { ", " } else { "" };
                let _ = write!(
                    line,
                    "{{ \"name\": \"{}\", \"best_us\": {:.1}, \"words_per_sec\": {:.0}, \"degraded\": {} }}{comma}",
                    s.name,
                    s.best_secs * 1e6,
                    s.words_per_sec,
                    s.degraded
                );
            }
            line.push_str("] }\n");
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()))
                .expect("append trajectory line");
            if trajectory_configs.is_some() {
                println!(
                    "appended trajectory line to {path} ({} gating rows, {skipped} filtered)",
                    gating.len()
                );
            } else {
                println!("appended trajectory line to {path}");
            }
        }
    }
}
