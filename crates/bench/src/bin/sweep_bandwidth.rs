//! Raw sweep-bandwidth measurement: serial and parallel marking, naive
//! (seed) shadow map vs the atomic radix shadow map, in words/second.
//!
//! Four configurations over the same pointer-dense fixture:
//!
//! * `naive_serial` — the seed's `HashMap`-of-chunks map
//!   ([`NaiveShadowMap`]), one thread;
//! * `naive_parallel_hN` — the seed's §4.4 scheme: N+1 threads each
//!   marking into a **private** naive map, then a serial union merge;
//! * `atomic_serial` — the radix [`ShadowMap`] through [`Marker`] (the
//!   production sweep path, single `scan_page` probe per page slice);
//! * `atomic_parallel_hN` — [`parallel_mark`]: N+1 threads sharing **one**
//!   atomic map, no per-thread maps, no union barrier;
//! * `incremental_dP` — the incremental sweep: a [`PageCache`] primed by a
//!   cold sweep, then each rep retires a P%-dirty page set and replays the
//!   digests of the clean remainder instead of re-reading it;
//! * `incremental_filtered_d5` — incremental plus a [`CandidateFilter`]
//!   covering every 8th page (a sparse quarantine), gating shadow writes;
//! * `forensics_off` / `forensics_sampled_s8` / `forensics_full` — the
//!   serial accel path with an [`EdgeRecorder`] over a synthetic
//!   every-8th-page quarantine: off measures the disabled single-branch
//!   cost, sampled records 1-in-8 candidate hits, full records them all.
//!
//! Helper counts are reported as requested *and* effective — the
//! production path clamps to [`effective_helper_count`], so oversubscribed
//! requests show up honestly in the output.
//!
//! Timing is `std::time::Instant` only (no harness dependency); the best
//! of `--reps` runs is reported, which is the right statistic for a
//! bandwidth measurement on a shared machine. Results are printed as a
//! table and written as JSON (default `BENCH_sweep.json`, `--out PATH`).

use std::fmt::Write as _;
use std::time::Instant;

use minesweeper::telemetry::{
    EventKind, Histogram, NullSink, Registry, Tracer, SNAPSHOT_SCHEMA_VERSION,
};
use minesweeper::{
    effective_helper_count, parallel_mark, CandidateFilter, EdgeRecorder, ForensicsMode,
    MarkAccel, Marker, NaiveShadowMap, PageCache, QEntry, ShadowMap, SweepPlan,
};
use vmem::{Addr, AddrSpace, Layout, PageIdx, PAGE_SIZE, WORD_SIZE};

/// Subsystem label for the bench's own instruments.
const BENCH_SUBSYSTEM: &str = "bench";

/// A committed heap region littered with pointers (1 word in 7 points
/// into the heap — pointer-dense, like the paper's allocation-heavy
/// benchmarks), plus a plan over it.
fn sweep_fixture(pages: u64) -> (AddrSpace, SweepPlan) {
    let mut space = AddrSpace::new();
    let base = space.reserve_heap(pages);
    space.map(base, pages).unwrap();
    for i in 0..pages * 512 {
        let v = if i % 7 == 0 { base.raw() + (i * 64) % (pages * 4096) } else { i };
        space.write_word(base + i * 8, v).unwrap();
    }
    (space, SweepPlan::from_ranges(vec![(base, pages * PAGE_SIZE as u64)]))
}

/// Splits the plan into `threads` contiguous word-aligned byte shares.
fn split_shares(plan: &SweepPlan, threads: usize) -> Vec<Vec<(Addr, u64)>> {
    let share = plan
        .total_bytes()
        .div_ceil(threads as u64)
        .next_multiple_of(WORD_SIZE as u64)
        .max(WORD_SIZE as u64);
    let mut shares: Vec<Vec<(Addr, u64)>> = vec![Vec::new(); threads];
    let mut t = 0;
    let mut filled = 0u64;
    for &(base, len) in plan.ranges() {
        let (mut base, mut len) = (base, len);
        while len > 0 {
            let room = share.saturating_sub(filled);
            if room == 0 {
                t = (t + 1).min(threads - 1);
                filled = 0;
                continue;
            }
            let take = len.min(room);
            shares[t].push((base, take));
            base = base.add_bytes(take);
            len -= take;
            filled += take;
        }
    }
    shares
}

/// The seed's marking loop over one share into a naive map.
fn naive_mark_share(
    space: &AddrSpace,
    layout: &Layout,
    share: &[(Addr, u64)],
    shadow: &mut NaiveShadowMap,
) {
    for &(base, len) in share {
        let mut off = 0;
        while off < len {
            let addr = base.add_bytes(off);
            let page_end = addr.page().next().base().offset_from(base).min(len);
            if let Ok(Some(page)) = space.scan_page(addr.page()) {
                let w0 = addr.word_in_page();
                let w1 = w0 + ((page_end - off) / WORD_SIZE as u64) as usize;
                for &value in &page[w0..w1] {
                    if layout.heap_contains(Addr::new(value)) {
                        shadow.mark(Addr::new(value));
                    }
                }
            }
            off = page_end;
        }
    }
}

/// One measured configuration.
struct Sample {
    name: String,
    /// Helper threads as requested on the config.
    helpers: usize,
    /// Helper threads actually spawned after the hardware clamp.
    effective_helpers: usize,
    /// Dirty-page percentage for incremental configs, `None` otherwise.
    dirty_pct: Option<u32>,
    best_secs: f64,
    words_per_sec: f64,
    marked: u64,
}

fn measure(
    name: &str,
    helpers: usize,
    total_words: u64,
    reps: u32,
    registry: &Registry,
    mut run: impl FnMut() -> u64,
) -> Sample {
    // Per-rep durations land in a log2 histogram, so the exported metrics
    // carry the whole distribution, not just the best-of statistic.
    let rep_us: Histogram = registry.histogram(BENCH_SUBSYSTEM, &format!("{name}_us"));
    let mut best = f64::INFINITY;
    let mut marked = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        marked = run();
        let secs = t0.elapsed().as_secs_f64();
        rep_us.record((secs * 1e6) as u64);
        best = best.min(secs);
    }
    Sample {
        name: name.to_string(),
        helpers,
        effective_helpers: effective_helper_count(helpers),
        dirty_pct: None,
        best_secs: best,
        words_per_sec: total_words as f64 / best,
        marked,
    }
}

fn main() {
    let mut pages = 2048u64; // 8 MiB, matching the micro benches
    let mut reps = 5u32;
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut metrics_path = "BENCH_sweep_metrics.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pages" => pages = args.next().expect("--pages N").parse().expect("number"),
            "--reps" => reps = args.next().expect("--reps N").parse().expect("number"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--metrics-out" => metrics_path = args.next().expect("--metrics-out PATH"),
            "--quick" => {
                pages = 256;
                reps = 2;
            }
            other => {
                eprintln!(
                    "usage: sweep_bandwidth [--pages N] [--reps N] [--out PATH] \
                     [--metrics-out PATH] [--quick]"
                );
                panic!("unknown argument {other:?}");
            }
        }
    }
    let registry = Registry::new();

    let (mut space, plan) = sweep_fixture(pages);
    let layout = *space.layout();
    let total_words = pages * (PAGE_SIZE / WORD_SIZE) as u64;
    let helper_counts = [1usize, 3, 6];
    let mut samples: Vec<Sample> = Vec::new();

    // Seed scheme, serial: naive map, direct scan loop.
    samples.push(measure("naive_serial", 0, total_words, reps, &registry, || {
        let mut shadow = NaiveShadowMap::new();
        naive_mark_share(&space, &layout, plan.ranges(), &mut shadow);
        shadow.marked_count()
    }));

    // Seed scheme, parallel: per-thread naive maps + union merge.
    for &h in &helper_counts {
        let shares = split_shares(&plan, h + 1);
        let space_ref = &space;
        let layout_ref = &layout;
        samples.push(measure(&format!("naive_parallel_h{h}"), h, total_words, reps, &registry, || {
            let maps: Vec<NaiveShadowMap> = std::thread::scope(|scope| {
                shares
                    .iter()
                    .map(|share| {
                        scope.spawn(move || {
                            let mut shadow = NaiveShadowMap::new();
                            naive_mark_share(space_ref, layout_ref, share, &mut shadow);
                            shadow
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|hnd| hnd.join().expect("marker thread"))
                    .collect()
            });
            let mut merged = NaiveShadowMap::new();
            for m in &maps {
                merged.union(m);
            }
            merged.marked_count()
        }));
    }

    // Atomic radix map, serial, through the production Marker path.
    samples.push(measure("atomic_serial", 0, total_words, reps, &registry, || {
        let shadow = ShadowMap::new();
        Marker::new(plan.clone()).run_to_end(&mut space, &layout, &shadow);
        shadow.marked_count()
    }));

    // Atomic serial again, but with the sweep tracer engaged on a null
    // sink — the production layer's per-phase emission cost (a stopwatch
    // and one event per mark phase, never per word). The acceptance bar:
    // within 2% of the untraced run.
    let mut tracer = Tracer::disabled();
    tracer.set_sink(Box::new(NullSink));
    samples.push(measure("atomic_serial_nullsink", 0, total_words, reps, &registry, || {
        let shadow = ShadowMap::new();
        let sw = tracer.stopwatch();
        Marker::new(plan.clone()).run_to_end(&mut space, &layout, &shadow);
        let marked = shadow.marked_count();
        tracer.emit(|| EventKind::MarkPhase {
            sweep: 0,
            bytes: total_words * WORD_SIZE as u64,
            words: total_words,
            skipped_bytes: 0,
            marked_granules: marked,
            wall_ns: sw.elapsed_ns(),
        });
        marked
    }));

    // Atomic radix map, parallel: one shared map, no union barrier.
    for &h in &helper_counts {
        samples.push(measure(&format!("atomic_parallel_h{h}"), h, total_words, reps, &registry, || {
            parallel_mark(&space, &plan, &layout, h).marked_count()
        }));
    }

    // Incremental sweep: prime a page-summary cache with one cold sweep,
    // then each rep retires the dirty fraction (every strideth page) and
    // replays the clean remainder. Re-scanned pages re-record digests, so
    // reps are idempotent. d100 retires everything — pure cache overhead.
    let heap_base = plan.ranges()[0].0;
    let mut epoch = 0u64;
    for &pct in &[5u32, 50, 100] {
        let stride = (100 / pct) as u64;
        let dirty: Vec<PageIdx> = (0..pages)
            .filter(|i| i % stride == 0)
            .map(|i| heap_base.add_bytes(i * PAGE_SIZE as u64).page())
            .collect();
        let mut cache = PageCache::new();
        epoch += 1;
        cache.begin_sweep(&plan, &[], epoch);
        {
            let shadow = ShadowMap::new();
            let mut accel = MarkAccel { filter: None, cache: Some(&mut cache), qgen: 0, forensics: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
        }
        let mut s = measure(&format!("incremental_d{pct}"), 0, total_words, reps, &registry, || {
            epoch += 1;
            cache.begin_sweep(&plan, &dirty, epoch);
            let shadow = ShadowMap::new();
            let mut accel = MarkAccel { filter: None, cache: Some(&mut cache), qgen: 0, forensics: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
            shadow.marked_count()
        });
        s.dirty_pct = Some(pct);
        samples.push(s);
    }

    // Candidate filter over every 8th page — a sparse quarantine. The
    // filtered mark set is a strict subset, so it checks against its own
    // serial reference, not the full-sweep one.
    let filter = CandidateFilter::build(
        (0..pages)
            .filter(|i| i % 8 == 0)
            .map(|i| (heap_base.add_bytes(i * PAGE_SIZE as u64), PAGE_SIZE as u64)),
    );
    let expect_filtered = {
        let shadow = ShadowMap::new();
        let mut accel = MarkAccel { filter: Some(&filter), cache: None, qgen: 0, forensics: None };
        Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
        shadow.marked_count()
    };
    {
        let stride = 20u64; // 5% dirty
        let dirty: Vec<PageIdx> = (0..pages)
            .filter(|i| i % stride == 0)
            .map(|i| heap_base.add_bytes(i * PAGE_SIZE as u64).page())
            .collect();
        let mut cache = PageCache::new();
        epoch += 1;
        cache.begin_sweep(&plan, &[], epoch);
        {
            let shadow = ShadowMap::new();
            let mut accel =
                MarkAccel { filter: Some(&filter), cache: Some(&mut cache), qgen: 0, forensics: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
        }
        let mut s = measure("incremental_filtered_d5", 0, total_words, reps, &registry, || {
            epoch += 1;
            cache.begin_sweep(&plan, &dirty, epoch);
            let shadow = ShadowMap::new();
            let mut accel =
                MarkAccel { filter: Some(&filter), cache: Some(&mut cache), qgen: 0, forensics: None };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
            shadow.marked_count()
        });
        s.dirty_pct = Some(5);
        samples.push(s);
    }

    // Forensics: the serial accel path with provenance recording over a
    // synthetic quarantine (every 8th page is one page-sized candidate —
    // sparse, like a real locked set). Off measures the disabled
    // single-branch dispatch cost; sampled and full pay the per-hit
    // binary search + atomic update. Recording never touches the shadow
    // map, so every config checks against the full-sweep mark set.
    let candidates: Vec<QEntry> = (0..pages)
        .filter(|i| i % 8 == 0)
        .map(|i| QEntry::new(heap_base.add_bytes(i * PAGE_SIZE as u64), PAGE_SIZE as u64))
        .collect();
    for (name, mode) in [
        ("forensics_off", ForensicsMode::Off),
        ("forensics_sampled_s8", ForensicsMode::Sampled(8)),
        ("forensics_full", ForensicsMode::Full),
    ] {
        let recorder = EdgeRecorder::new(&candidates, mode);
        samples.push(measure(name, 0, total_words, reps, &registry, || {
            let shadow = ShadowMap::new();
            let mut accel = MarkAccel {
                filter: None,
                cache: None,
                qgen: 0,
                forensics: recorder.as_ref(),
            };
            Marker::new(plan.clone()).run_to_end_accel(&mut space, &layout, &shadow, &mut accel);
            shadow.marked_count()
        }));
        if mode == ForensicsMode::Full {
            let rec = recorder.as_ref().expect("full mode builds a recorder");
            assert!(rec.recorded() > 0, "pointer-dense fixture must record edges");
        }
    }

    // Every full configuration must find the same mark set; filtered
    // configurations must match the filtered serial reference.
    let expect = samples[0].marked;
    for s in &samples {
        let want = if s.name.contains("filtered") { expect_filtered } else { expect };
        assert_eq!(s.marked, want, "{} disagrees on the mark set", s.name);
    }

    println!(
        "== sweep bandwidth: {} MiB fixture, {} marked granules, best of {} ==\n",
        (pages * PAGE_SIZE as u64) >> 20,
        expect,
        reps
    );
    println!(
        "{:<24} {:>9} {:>6} {:>12} {:>14}",
        "config", "help r/e", "dirty", "ms", "Mwords/s"
    );
    let baseline = samples[0].words_per_sec;
    for s in &samples {
        println!(
            "{:<24} {:>9} {:>6} {:>12.3} {:>14.1}   ({:.2}x naive serial)",
            s.name,
            format!("{}/{}", s.helpers, s.effective_helpers),
            s.dirty_pct.map_or("-".to_string(), |p| format!("{p}%")),
            s.best_secs * 1e3,
            s.words_per_sec / 1e6,
            s.words_per_sec / baseline
        );
    }

    // Tracing-overhead ratio: traced (null sink) vs untraced atomic serial.
    let untraced = samples.iter().find(|s| s.name == "atomic_serial").unwrap();
    let traced = samples.iter().find(|s| s.name == "atomic_serial_nullsink").unwrap();
    let null_sink_ratio = traced.words_per_sec / untraced.words_per_sec;

    let mut json = String::from("{\n");
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let _ = writeln!(json, "  \"fixture\": {{ \"pages\": {pages}, \"total_words\": {total_words}, \"marked_granules\": {expect}, \"reps\": {reps}, \"cpus\": {cpus} }},");
    let _ = writeln!(
        json,
        "  \"telemetry\": {{ \"schema_version\": {SNAPSHOT_SCHEMA_VERSION}, \"null_sink_vs_untraced\": {null_sink_ratio:.3}, \"metrics_out\": \"{metrics_path}\" }},"
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let dirty = s.dirty_pct.map_or("null".to_string(), |p| p.to_string());
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"requested_helpers\": {}, \"effective_helpers\": {}, \"dirty_pct\": {dirty}, \"best_ms\": {:.3}, \"words_per_sec\": {:.0}, \"vs_naive_serial\": {:.3} }}{comma}",
            s.name,
            s.helpers,
            s.effective_helpers,
            s.best_secs * 1e3,
            s.words_per_sec,
            s.words_per_sec / baseline
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write JSON results");
    std::fs::write(&metrics_path, registry.snapshot().to_json())
        .expect("write metrics snapshot");
    println!("\nwrote {out_path} and {metrics_path}");
}
