//! Shared harness for the figure regenerators.
//!
//! Each `fig*` binary in `src/bin/` reproduces one table/figure from the
//! paper: it replays the relevant benchmark profiles under the relevant
//! systems (same seed everywhere), prints the measured series next to the
//! paper-reported values, and summarises with geometric means. See
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for the
//! recorded outcomes.

use sim::{geomean, run, RunMetrics, System};
use workloads::Profile;

/// Results for one benchmark: the baseline plus each system under test,
/// per seed. Ratios are medians over seeds — the paper "took the median
/// of three runs" (Appendix A footnote 8).
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// The benchmark profile.
    pub profile: Profile,
    /// Baseline (unmodified allocator) metrics, one per seed.
    pub baselines: Vec<RunMetrics>,
    /// Per system (input order): one metrics record per seed.
    pub results: Vec<(String, Vec<RunMetrics>)>,
}

/// Median of a non-empty slice (averaging the middle pair on even sizes).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

impl SuiteRow {
    fn ratio(&self, i: usize, f: impl Fn(&RunMetrics, &RunMetrics) -> f64) -> f64 {
        let per_seed: Vec<f64> = self.results[i]
            .1
            .iter()
            .zip(&self.baselines)
            .map(|(m, b)| f(m, b))
            .collect();
        median(&per_seed)
    }

    /// The first seed's metrics for system `i` (sweep counts etc.).
    pub fn first(&self, i: usize) -> &RunMetrics {
        &self.results[i].1[0]
    }

    /// Median slowdown of result `i` vs the baseline.
    pub fn slowdown(&self, i: usize) -> f64 {
        self.ratio(i, |m, b| m.slowdown_vs(b))
    }

    /// Median average-memory overhead of result `i` vs the baseline.
    pub fn memory(&self, i: usize) -> f64 {
        self.ratio(i, |m, b| m.memory_overhead_vs(b))
    }

    /// Median peak-memory overhead of result `i` vs the baseline.
    pub fn peak(&self, i: usize) -> f64 {
        self.ratio(i, |m, b| m.peak_overhead_vs(b))
    }
}

/// The seed every figure uses; fixed so runs are reproducible and
/// comparable across binaries.
pub const SEED: u64 = 0x4d53_2022; // "MS 2022"

/// Seeds per configuration: `MS_BENCH_SEEDS` (default 1; the paper used
/// the median of 3).
pub fn seed_count() -> u64 {
    std::env::var("MS_BENCH_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Runs every profile under the baseline plus each system, at
/// [`seed_count`] seeds each.
pub fn run_suite(profiles: &[Profile], systems: &[System]) -> Vec<SuiteRow> {
    let seeds: Vec<u64> = (0..seed_count()).map(|i| SEED + i).collect();
    profiles
        .iter()
        .map(|p| {
            eprintln!("  running {} ({} allocs, {} seed(s))...", p.name, p.total_allocs, seeds.len());
            let baselines: Vec<RunMetrics> =
                seeds.iter().map(|&s| run(p, System::Baseline, s)).collect();
            let results = systems
                .iter()
                .map(|&sys| {
                    let per_seed = seeds.iter().map(|&s| run(p, sys, s)).collect();
                    (sys.label().to_string(), per_seed)
                })
                .collect();
            SuiteRow { profile: p.clone(), baselines, results }
        })
        .collect()
}

/// Geomean of per-benchmark slowdowns for system index `i`.
pub fn geomean_slowdown(rows: &[SuiteRow], i: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.slowdown(i)).collect::<Vec<_>>())
}

/// Geomean of per-benchmark average-memory overheads for system index `i`.
pub fn geomean_memory(rows: &[SuiteRow], i: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.memory(i)).collect::<Vec<_>>())
}

/// Geomean of per-benchmark peak-memory overheads for system index `i`.
pub fn geomean_peak(rows: &[SuiteRow], i: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.peak(i)).collect::<Vec<_>>())
}

/// The standard three-way comparison the paper reruns (§5.1): MarkUs,
/// FFmalloc, MineSweeper (fully concurrent).
pub fn compared_systems() -> Vec<System> {
    vec![System::markus_default(), System::FfMalloc, System::minesweeper_default()]
}

/// Honors `MS_BENCH_QUICK=1` by truncating a profile list to the named
/// allocation-heavy subset — useful while iterating.
pub fn maybe_quick(mut profiles: Vec<Profile>) -> Vec<Profile> {
    if std::env::var("MS_BENCH_QUICK").is_ok_and(|v| v == "1") {
        let keep = ["xalancbmk", "omnetpp", "perlbench", "gcc", "dealII", "sphinx3"];
        profiles.retain(|p| keep.contains(&p.name));
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runner_produces_comparable_rows() {
        let profiles = vec![Profile::demo()];
        let rows = run_suite(&profiles, &[System::minesweeper_default()]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].results.len(), 1);
        assert!(rows[0].slowdown(0) >= 1.0);
        assert!(rows[0].memory(0) > 0.5);
        assert!(geomean_slowdown(&rows, 0) >= 1.0);
        assert!(rows[0].first(0).sweeps > 0);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn quick_filter_respects_env() {
        // Not set in the test environment: list passes through.
        std::env::remove_var("MS_BENCH_QUICK");
        let all = workloads::spec2006::all();
        assert_eq!(maybe_quick(all.clone()).len(), all.len());
    }
}
