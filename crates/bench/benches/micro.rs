//! Criterion micro-benchmarks for the core mechanisms: raw sweep bandwidth
//! (serial vs parallel), shadow-map marking, allocator fast paths, the
//! quarantine insert path, and end-to-end figure-scale runs on a demo
//! profile. These measure the *reproduction's* real-machine performance;
//! the paper-figure numbers come from the virtual cost model (see
//! `fig*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use jalloc::JAlloc;
use minesweeper::{parallel_mark, Marker, MineSweeper, MsConfig, ShadowMap, SweepPlan};
use sim::{run, System};
use vmem::{Addr, AddrSpace, PAGE_SIZE};
use workloads::Profile;

/// A committed heap region littered with pointers, plus a plan over it.
fn sweep_fixture(pages: u64) -> (AddrSpace, SweepPlan) {
    let mut space = AddrSpace::new();
    let base = space.reserve_heap(pages);
    space.map(base, pages).unwrap();
    for i in 0..pages * 512 {
        let v = if i % 7 == 0 { base.raw() + (i * 64) % (pages * 4096) } else { i };
        space.write_word(base + i * 8, v).unwrap();
    }
    (space, SweepPlan::from_ranges(vec![(base, pages * PAGE_SIZE as u64)]))
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_bandwidth");
    let pages = 2048; // 8 MiB
    let (mut space, plan) = sweep_fixture(pages);
    group.throughput(Throughput::Bytes(pages * PAGE_SIZE as u64));
    group.sample_size(20);
    group.bench_function("serial_marker", |b| {
        let layout = *space.layout();
        b.iter(|| {
            let mut shadow = ShadowMap::new();
            let mut marker = Marker::new(plan.clone());
            marker.run_to_end(&mut space, &layout, &mut shadow);
            black_box(shadow.marked_count())
        })
    });
    for helpers in [1usize, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("parallel_mark_helpers", helpers),
            &helpers,
            |b, &h| {
                let layout = *space.layout();
                b.iter(|| black_box(parallel_mark(&space, &plan, &layout, h).marked_count()))
            },
        );
    }
    group.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_map");
    group.bench_function("mark_1k_scattered", |b| {
        b.iter(|| {
            let s = ShadowMap::new();
            let mut w = s.writer();
            for i in 0..1000u64 {
                w.mark(Addr::new(0x1_0000_0000 + i * 4096));
            }
            drop(w); // publish buffered marks
            black_box(s.marked_count())
        })
    });
    group.bench_function("range_check_64B", |b| {
        let s = ShadowMap::new();
        s.mark(Addr::new(0x1_0000_0040));
        b.iter(|| black_box(s.range_marked(Addr::new(0x1_0000_0000), 64)))
    });
    group.finish();
}

fn bench_alloc_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.bench_function("jalloc_malloc_free_64B", |b| {
        let mut space = AddrSpace::new();
        let mut heap = JAlloc::new();
        b.iter(|| {
            let a = heap.malloc(&mut space, 64);
            heap.free(&mut space, black_box(a)).unwrap();
        })
    });
    group.bench_function("minesweeper_free_quarantine_64B", |b| {
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        // Pre-allocate a pool; free+sweep+realloc in steady state.
        let pool: Vec<Addr> = (0..1024).map(|_| ms.malloc(&mut space, 64)).collect();
        let mut i = 0;
        b.iter(|| {
            ms.free(&mut space, pool[i % 1024]);
            if ms.sweep_needed(&space) {
                ms.sweep_now(&mut space);
            }
            let a = ms.malloc(&mut space, 64);
            i += 1;
            black_box(a)
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_demo_profile");
    group.sample_size(10);
    let profile = Profile { total_allocs: 5_000, ..Profile::demo() };
    for system in [System::Baseline, System::minesweeper_default(), System::markus_default(), System::FfMalloc] {
        group.bench_with_input(
            BenchmarkId::new("run", system.label()),
            &system,
            |b, &s| b.iter(|| black_box(run(&profile, s, 7).mutator_cycles)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_shadow, bench_alloc_paths, bench_end_to_end);
criterion_main!(benches);
