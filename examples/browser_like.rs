//! A browser-tab-like workload: DOM-node churn with a long-lived cache —
//! the allocation pattern the paper's intro motivates (a script in a
//! sandbox driving allocations while the host process must stay safe).
//!
//! Runs the same workload under the baseline, MineSweeper, MarkUs and
//! FFmalloc and prints the overhead comparison, i.e. a miniature Figure
//! 9/10 for one custom profile you can tweak.
//!
//! ```sh
//! cargo run --release --example browser_like
//! ```

use sim::report::{bytes, fx, table};
use sim::{run, System};
use workloads::{LifetimeDist, Profile, SizeDist};

fn main() {
    // "DOM nodes": many small objects, mostly short-lived, with a
    // persistent cache minority and heavy pointer connectivity.
    let profile = Profile {
        name: "browser-tab",
        suite: "custom",
        total_allocs: 60_000,
        cycles_per_alloc: 900,
        size_dist: SizeDist::Mixture(vec![
            (0.85, SizeDist::LogNormal { median: 96, sigma: 2.0, cap: 4096 }),
            (0.12, SizeDist::Uniform(4 * 1024, 64 * 1024)),   // style/layout buffers
            (0.03, SizeDist::Uniform(256 * 1024, 1024 * 1024)), // images
        ]),
        lifetime: LifetimeDist::Mixture(vec![
            (0.80, LifetimeDist::Exp(800.0)),     // per-frame churn
            (0.17, LifetimeDist::Exp(15_000.0)),  // per-page structures
            (0.03, LifetimeDist::Permanent),      // caches
        ]),
        ptr_density: 0.5, // DOM trees are pointer-rich
        false_ptr_rate: 0.0005,
        dangling_rate: 0.004,
        root_slots: 128,
        threads: 1,
        phases: 6,       // page navigations: per-page structures collapse
        phase_frac: 0.15,
        straggler_rate: 0.01, // session caches that never die
        cache_sensitivity: 0.8,
        paper: Default::default(),
    };

    let seed = 2024;
    println!("running baseline...");
    let base = run(&profile, System::Baseline, seed);
    let systems = [
        System::minesweeper_default(),
        System::minesweeper_mostly(),
        System::markus_default(),
        System::FfMalloc,
    ];
    let mut rows = vec![vec![
        "system".to_string(),
        "slowdown".into(),
        "avg memory".into(),
        "peak memory".into(),
        "cpu util".into(),
        "sweeps".into(),
        "failed frees".into(),
    ]];
    rows.push(vec![
        "baseline".into(),
        fx(1.0),
        bytes(base.avg_rss() as u64),
        bytes(base.peak_rss),
        fx(1.0),
        "0".into(),
        "0".into(),
    ]);
    for sys in systems {
        println!("running {}...", sys.label());
        let m = run(&profile, sys, seed);
        rows.push(vec![
            sys.label().to_string(),
            fx(m.slowdown_vs(&base)),
            fx(m.memory_overhead_vs(&base)),
            fx(m.peak_overhead_vs(&base)),
            fx(m.cpu_utilisation()),
            m.sweeps.to_string(),
            m.failed_frees.to_string(),
        ]);
    }
    println!("\n{}", table(&rows));
    println!("Expected shape: MineSweeper adds a few percent; MarkUs costs more time;");
    println!("FFmalloc is fast but its memory balloons on the cache minority.");
}
