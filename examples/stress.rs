//! Allocator stress: a mimalloc-bench-style alloc/free storm (§5.7), with
//! the allocation-pause valve visible. Most of these "benchmarks do not do
//! any work, other than allocating and freeing memory", violating the
//! assumption that sweeps keep up in the background — MineSweeper bounds
//! the damage by pausing allocation when the quarantine outruns the sweep.
//!
//! ```sh
//! cargo run --release --example stress
//! ```

use sim::report::{fx, table};
use sim::{run, System};
use workloads::mimalloc_bench;

fn main() {
    let names = ["alloc-test1", "cfrac", "glibc-simple", "mstressN", "xmalloc-testN"];
    let mut rows = vec![vec![
        "stress test".to_string(),
        "ms slowdown".into(),
        "ms memory".into(),
        "sweeps".into(),
        "pause cycles".into(),
    ]];
    for name in names {
        let p = mimalloc_bench::by_name(name).expect("profile exists");
        println!("running {name} (baseline + minesweeper)...");
        let base = run(&p, System::Baseline, 99);
        let ms = run(&p, System::minesweeper_default(), 99);
        rows.push(vec![
            name.to_string(),
            fx(ms.slowdown_vs(&base)),
            fx(ms.memory_overhead_vs(&base)),
            ms.sweeps.to_string(),
            ms.pause_cycles.to_string(),
        ]);
    }
    println!("\n{}", table(&rows));
    println!("Under these unrealistic rates overheads exceed the SPEC numbers");
    println!("(paper: 2.7x geomean time, 4.0x memory) but stay bounded — the");
    println!("pause threshold trades slowdown for memory (§5.7).");
}
