//! MineSweeper + MTE-style memory tagging (§6.2's future-work sketch,
//! implemented): detection instead of mitigation, and limited reuse that
//! cuts failed frees.
//!
//! ```sh
//! cargo run --example mte_detection
//! ```

use minesweeper::{untag_ptr, MsConfig, MteError, MteHeap, QUARANTINE_TAG};
use vmem::AddrSpace;

fn main() {
    let mut space = AddrSpace::new();
    let mut heap = MteHeap::new(MsConfig::fully_concurrent());

    println!("== 1. Detection: use-after-free faults at the access ==\n");
    let p = heap.malloc(&mut space, 64);
    let (addr, tag) = untag_ptr(p);
    println!("allocated {addr} with tag {tag:#x}; pointer carries the tag");
    heap.store(&mut space, p, 0xfeed).unwrap();
    heap.free(&mut space, p);
    println!("freed -> quarantined and retagged to {QUARANTINE_TAG:#x}");
    match heap.load(&mut space, p) {
        Err(MteError::TagMismatch { ptr_tag, mem_tag, .. }) => {
            println!(
                "dangling load DETECTED: pointer tag {ptr_tag:#x} vs memory tag {mem_tag:#x}"
            );
            println!("(plain MineSweeper would have returned benign zeroes)\n");
        }
        other => panic!("expected detection, got {other:?}"),
    }

    println!("== 2. Detection: double free ==\n");
    let q = heap.malloc(&mut space, 128);
    heap.free(&mut space, q);
    let outcome = heap.free(&mut space, q);
    println!("second free -> {outcome:?} (tag check caught it)");
    println!("detections so far: {}\n", heap.detections());

    println!("== 3. Limited reuse: stale-tagged pointers do not pin ==\n");
    // A dangling pointer survives in live memory...
    let victim = heap.malloc(&mut space, 64);
    let holder = heap.malloc(&mut space, 64);
    heap.store(&mut space, holder, victim).unwrap();
    heap.free(&mut space, victim);
    // ...but its tag no longer matches, so on MTE hardware it cannot
    // dereference — the tag-aware sweep recycles the memory immediately.
    let report = heap.sweep_now_tag_aware(&mut space);
    println!(
        "tag-aware sweep: released={} failed={} (plain sweep would have failed=1)",
        report.released, report.failed
    );
    assert_eq!(report.failed, 0);
    println!("\n\"hardware mechanisms could combine with MineSweeper to achieve");
    println!(" deterministic protection ... by allowing limited reuse of regions,");
    println!(" and detection rather than just mitigation of attacks.\" (§6.2)");
}
