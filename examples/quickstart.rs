//! Quickstart: protect a heap with MineSweeper in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use minesweeper::{FreeOutcome, MineSweeper, MsConfig};
use vmem::AddrSpace;

fn main() {
    // The simulated process: an address space and a protected heap.
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(MsConfig::fully_concurrent());

    // Allocate an object and a second one holding a pointer to it.
    let obj = ms.malloc(&mut space, 64);
    space.write_word(obj, 0xfeed_face).unwrap();
    let holder = ms.malloc(&mut space, 64);
    space.write_word(holder, obj.raw()).unwrap();
    println!("allocated obj at {obj}, pointer to it stored in {holder}");

    // The program frees obj... while the pointer still exists. Bug!
    assert_eq!(ms.free(&mut space, obj), FreeOutcome::Quarantined);
    println!("freed obj -> quarantined (contents zeroed, not recycled)");

    // A sweep scans memory, finds the dangling pointer, and refuses to
    // recycle the allocation.
    let report = ms.sweep_now(&mut space);
    println!(
        "sweep #1: released={}, failed={} (dangling pointer found)",
        report.released, report.failed
    );
    assert_eq!(report.failed, 1);

    // Attacker-style reallocation attempts cannot obtain obj's memory.
    for _ in 0..100 {
        assert_ne!(ms.malloc(&mut space, 64), obj);
    }
    println!("100 reallocations of the same size: none reused obj's address");

    // The program finally overwrites the stale pointer...
    space.write_word(holder, 0).unwrap();
    let report = ms.sweep_now(&mut space);
    println!("sweep #2 after erasing the pointer: released={}", report.released);
    assert_eq!(report.released, 1);

    // ...and now the memory can be recycled safely.
    let recycled = ms.malloc(&mut space, 64);
    println!("new allocation at {recycled} (reuse is safe now)");
    println!("\nstats: {:?}", ms.stats());
}
