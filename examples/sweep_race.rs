//! The §4.3 concurrency race, constructed step by step.
//!
//! Fully concurrent mode sweeps memory once. If the program moves the only
//! copy of a dangling pointer from an address *ahead* of the sweep cursor
//! to one *behind* it, then erases the original — all mid-sweep — the
//! pointer is seen at neither location (footnote 5). Mostly concurrent
//! mode closes the window by re-checking soft-dirty pages in a brief
//! stop-the-world pass.
//!
//! This example drives the incremental sweep cursor by hand and shows the
//! two modes disagreeing on exactly this scenario.
//!
//! ```sh
//! cargo run --example sweep_race
//! ```

use minesweeper::{MineSweeper, MsConfig, SweepMode};
use vmem::AddrSpace;

fn demonstrate(mode: SweepMode) -> u64 {
    let cfg = match mode {
        SweepMode::FullyConcurrent => MsConfig::fully_concurrent(),
        SweepMode::MostlyConcurrent => MsConfig::mostly_concurrent(),
    };
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);

    // victim will dangle; slot_a sits at a lower address than slot_b
    // within the same slab, so the cursor passes slot_a first.
    let victim = ms.malloc(&mut space, 64);
    let slot_a = ms.malloc(&mut space, 64);
    let slot_b = ms.malloc(&mut space, 64);
    assert!(slot_a < slot_b);

    // The only copy of the dangling pointer lives in slot_b.
    space.write_word(slot_b, victim.raw()).unwrap();
    ms.free(&mut space, victim);

    // Start a sweep and single-step the marker until it has passed slot_a
    // but not yet reached slot_b.
    ms.start_sweep(&mut space);
    loop {
        let r = ms.sweep_step(&mut space, 1);
        if r.finished {
            break;
        }
        // Once 128 bytes of the victim's slab page are behind the cursor,
        // slot_a (offset 80..160) has been swept.
        if ms.sweep_remaining_bytes() == 0 {
            break;
        }
        // Probe: has the cursor passed slot_a's word but not slot_b's?
        // (We step conservatively; the layer exposes remaining bytes only,
        // so step until the math says slot_a is behind the front.)
        if swept_past(&ms, &space, slot_a) && !swept_past(&ms, &space, slot_b) {
            break;
        }
    }

    // Mid-sweep: the program moves the pointer behind the cursor and
    // erases the original ahead of it.
    space.write_word(slot_a, victim.raw()).unwrap();
    space.write_word(slot_b, 0).unwrap();

    let report = ms.finish_sweep(&mut space);
    report.failed
}

/// Rough cursor-position probe via remaining bytes: the sweep plan visits
/// root pages first, then heap extents in address order, so within the
/// single slab page the front is (plan_total - remaining) from its start.
fn swept_past(ms: &MineSweeper, _space: &AddrSpace, addr: vmem::Addr) -> bool {
    // All three objects live at the start of the first heap extent; the
    // root segments are uncommitted (we wrote no stack slots), so the plan
    // is exactly the heap extents.
    let heap_ranges = ms.heap().active_ranges();
    let (ext_base, _) = heap_ranges[0];
    let total: u64 = heap_ranges.iter().map(|&(_, l)| l).sum();
    let front = total - ms.sweep_remaining_bytes();
    addr.offset_from(ext_base) + 8 <= front
}

fn main() {
    let fully = demonstrate(SweepMode::FullyConcurrent);
    println!("fully concurrent : failed frees = {fully}   (pointer MISSED — relaxed guarantee)");
    let mostly = demonstrate(SweepMode::MostlyConcurrent);
    println!("mostly concurrent: failed frees = {mostly}   (STW re-check catches the move)");

    assert_eq!(fully, 0, "fully concurrent mode misses the moved pointer");
    assert_eq!(mostly, 1, "mostly concurrent mode must catch it");
    println!();
    println!("\"The lack of stop-the-world only changes MineSweeper's properties when");
    println!(" the programmer moves around dangling pointers ... before using them.\" (§4.3)");
}
