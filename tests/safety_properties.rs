//! Cross-crate property tests of the paper's security guarantees.

use proptest::prelude::*;

use minesweeper_repro::minesweeper::{MineSweeper, MsConfig};
use minesweeper_repro::sim::{run_exploit, System};
use minesweeper_repro::vmem::{AddrSpace, Segment};
use minesweeper_repro::workloads::exploit::{ExploitOutcome, ExploitStep};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No parameterisation of the Figure 2 attack (victim size, spray
    /// volume, payload) compromises MineSweeper, in either mode.
    #[test]
    fn no_attack_variant_compromises_minesweeper(
        size in 8u64..100_000,
        spray in 1u32..512,
        payload in any::<u64>(),
        mostly in any::<bool>(),
    ) {
        let steps = vec![
            ExploitStep::AllocateVictim { size },
            ExploitStep::BuggyFree,
            ExploitStep::Spray { count: spray, payload },
            ExploitStep::VirtualCall,
        ];
        let sys = if mostly {
            System::minesweeper_mostly()
        } else {
            System::minesweeper_default()
        };
        let r = run_exploit(&steps, sys);
        prop_assert_ne!(r.outcome, ExploitOutcome::Compromised);
        prop_assert!(!r.victim_reallocated,
            "victim memory handed back while a dangling pointer exists");
    }

    /// Whatever mix of sizes is freed with rooted dangling pointers, a
    /// sweep never recycles any of them, and recycles all of them once the
    /// roots are cleared — over the full jalloc size-class spectrum.
    #[test]
    fn dangling_roots_pin_everything_until_cleared(
        sizes in proptest::collection::vec(8u64..60_000, 1..24),
    ) {
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let stack = space.layout().segment_base(Segment::Stack);
        let addrs: Vec<_> = sizes.iter().map(|&s| ms.malloc(&mut space, s)).collect();
        for (i, &a) in addrs.iter().enumerate() {
            space.write_word(stack + i as u64 * 8, a.raw()).unwrap();
            ms.free(&mut space, a);
        }
        let report = ms.sweep_now(&mut space);
        prop_assert_eq!(report.released, 0, "rooted danglers must all pin");
        prop_assert_eq!(report.failed, sizes.len() as u64);
        for i in 0..sizes.len() {
            space.write_word(stack + i as u64 * 8, 0).unwrap();
        }
        let report = ms.sweep_now(&mut space);
        prop_assert_eq!(report.released, sizes.len() as u64);
        prop_assert!(ms.quarantine().is_empty());
    }

    /// Interior and one-past-the-end pointers (C/C++ `end()`) also pin: the
    /// +1 byte request padding keeps past-the-end inside the allocation.
    #[test]
    fn end_pointers_pin_allocations(size in 16u64..50_000) {
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let stack = space.layout().segment_base(Segment::Stack);
        let a = ms.malloc(&mut space, size);
        // One-past-the-end pointer, as produced by `v.end()`.
        space.write_word(stack, a.raw() + size).unwrap();
        ms.free(&mut space, a);
        let report = ms.sweep_now(&mut space);
        prop_assert_eq!(report.failed, 1,
            "end() pointer for size {} must keep the allocation quarantined", size);
    }
}
