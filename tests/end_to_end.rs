//! Workspace integration tests: the full stack (vmem → jalloc →
//! minesweeper/baselines → workloads → sim) exercised end to end.

use minesweeper_repro::baselines::{MarkUs, MarkUsConfig};
use minesweeper_repro::minesweeper::{FreeOutcome, MineSweeper, MsConfig};
use minesweeper_repro::sim::{run, run_exploit, System};
use minesweeper_repro::vmem::AddrSpace;
use minesweeper_repro::workloads::exploit::{figure2_attack, ExploitOutcome};
use minesweeper_repro::workloads::{self, Profile};

/// The headline security claim, across the whole stack: the Figure 2
/// exploit compromises the baseline and is defeated by every mitigation.
#[test]
fn exploit_matrix_matches_paper_claims() {
    let baseline = run_exploit(&figure2_attack(), System::Baseline);
    assert_eq!(baseline.outcome, ExploitOutcome::Compromised);
    for sys in [
        System::minesweeper_default(),
        System::minesweeper_mostly(),
        System::markus_default(),
        System::FfMalloc,
    ] {
        let r = run_exploit(&figure2_attack(), sys);
        assert_ne!(r.outcome, ExploitOutcome::Compromised, "{} failed", sys.label());
        assert!(!r.victim_reallocated, "{} reallocated the victim", sys.label());
    }
}

/// MineSweeper and MarkUs agree on the verdict for simple shapes, and
/// MineSweeper's zeroing releases quarantine-internal structures MarkUs
/// keeps (Figure 6's simplification applied to a reachable chain).
#[test]
fn zeroing_vs_transitive_marking_semantics() {
    // Chain: root -> A -> B, then free both. MarkUs retains both (A is
    // rooted, A's pointer keeps B). MineSweeper zeroes A on free, so only
    // A (rooted) is retained and B is recycled.
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
    let a = ms.malloc(&mut space, 64);
    let b = ms.malloc(&mut space, 64);
    space.write_word(a, b.raw()).unwrap();
    let stack = space.layout().segment_base(minesweeper_repro::vmem::Segment::Stack);
    space.write_word(stack, a.raw()).unwrap();
    ms.free(&mut space, a);
    ms.free(&mut space, b);
    let report = ms.sweep_now(&mut space);
    assert_eq!((report.failed, report.released), (1, 1), "MineSweeper: A kept, B freed");

    let mut space = AddrSpace::new();
    let mut mu = MarkUs::new(MarkUsConfig::standard());
    let a = mu.malloc(&mut space, 64);
    let b = mu.malloc(&mut space, 64);
    space.write_word(a, b.raw()).unwrap();
    let stack = space.layout().segment_base(minesweeper_repro::vmem::Segment::Stack);
    space.write_word(stack, a.raw()).unwrap();
    mu.free(&mut space, a);
    mu.free(&mut space, b);
    let report = mu.collect(&mut space);
    assert_eq!(report.retained, 2, "MarkUs: no zeroing, both retained");
}

/// A full simulated benchmark run under every system completes, frees
/// everything, and produces sane overhead ratios.
#[test]
fn demo_profile_runs_under_all_systems() {
    let profile = Profile::demo();
    let base = run(&profile, System::Baseline, 1234);
    assert_eq!(base.allocs, profile.total_allocs);
    assert_eq!(base.frees, profile.total_allocs);
    for sys in [
        System::minesweeper_default(),
        System::minesweeper_mostly(),
        System::markus_default(),
        System::FfMalloc,
    ] {
        let m = run(&profile, sys, 1234);
        assert_eq!(m.allocs, profile.total_allocs, "{}", sys.label());
        let slowdown = m.slowdown_vs(&base);
        assert!(
            (0.95..10.0).contains(&slowdown),
            "{}: slowdown {slowdown} out of range",
            sys.label()
        );
        let mem = m.memory_overhead_vs(&base);
        assert!((0.5..80.0).contains(&mem), "{}: memory {mem} out of range", sys.label());
    }
}

/// Double frees are absorbed end to end: one true free reaches the
/// allocator no matter how many times the program frees.
#[test]
fn double_free_is_idempotent_through_the_stack() {
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(MsConfig::builder().report_double_frees(true).build());
    let a = ms.malloc(&mut space, 128);
    assert_eq!(ms.free(&mut space, a), FreeOutcome::Quarantined);
    for _ in 0..10 {
        assert_eq!(ms.free(&mut space, a), FreeOutcome::DoubleFree);
    }
    ms.sweep_now(&mut space);
    assert_eq!(ms.heap().stats().frees, 1);
    assert_eq!(ms.stats().double_frees, 10);
}

/// The allocation-heavy SPEC profiles trigger many more sweeps than the
/// compute-bound ones — Figure 14's shape, via the whole pipeline.
#[test]
fn sweep_count_ordering_follows_allocation_intensity() {
    let sweeps = |name: &str| {
        let p = workloads::spec2006::by_name(name).unwrap();
        // Shrink for test speed while keeping proportions.
        let p = Profile {
            total_allocs: (p.total_allocs / 10).max(200),
            ..p
        };
        run(&p, System::minesweeper_default(), 5).sweeps
    };
    let omnetpp = sweeps("omnetpp");
    let lbm = sweeps("lbm");
    let sjeng = sweeps("sjeng");
    assert!(omnetpp >= 5, "omnetpp must sweep repeatedly, got {omnetpp}");
    assert!(lbm <= 2, "lbm barely allocates, got {lbm}");
    assert!(sjeng <= 2, "sjeng barely allocates, got {sjeng}");
}

/// Deterministic reproduction across the whole stack: same seed, same
/// numbers; different seed, different trace.
#[test]
fn cross_stack_determinism() {
    let p = Profile { total_allocs: 3_000, ..Profile::demo() };
    let a = run(&p, System::minesweeper_default(), 77);
    let b = run(&p, System::minesweeper_default(), 77);
    assert_eq!(a.mutator_cycles, b.mutator_cycles);
    assert_eq!(a.background_cycles, b.background_cycles);
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.peak_rss, b.peak_rss);
    let c = run(&p, System::minesweeper_default(), 78);
    assert_ne!(
        (a.mutator_cycles, a.peak_rss),
        (c.mutator_cycles, c.peak_rss),
        "different seeds should perturb the run"
    );
}

/// The full adversarial corpus through the whole stack: the differential
/// matrix covers every (scenario, backend) pair, the unprotected baseline
/// falls to at least one scenario, and the minesweeper column holds the
/// line with zero Compromised cells — the invariant the CI security gate
/// enforces against the committed baseline.
#[test]
fn security_corpus_differential_matrix() {
    use minesweeper_repro::sim::{run_corpus, Weaken};
    let m = run_corpus(42, 3, Weaken::None);
    assert!(m.scenarios.len() >= 8 + 3);
    assert_eq!(m.backends.len(), 10);
    assert_eq!(m.cells.len(), m.scenarios.len() * m.backends.len());
    assert!(m.column("baseline").any(|c| c.outcome == ExploitOutcome::Compromised));
    for c in m.column("minesweeper") {
        assert_ne!(
            c.outcome,
            ExploitOutcome::Compromised,
            "minesweeper compromised by {}",
            c.scenario
        );
        assert!(c.attack_window.is_none(), "{} opened a window", c.scenario);
    }
}
