//! Integration tests across the full comparator zoo: every implemented
//! mitigation defeats the exploit, carries its published cost character,
//! and the recorded-trace pipeline feeds them all.

use minesweeper_repro::sim::{run, run_exploit, run_trace, System};
use minesweeper_repro::workloads::exploit::{figure2_attack, ExploitOutcome};
use minesweeper_repro::workloads::{recorded, Profile, TraceGen};

fn all_mitigations() -> [System; 9] {
    [
        System::minesweeper_default(),
        System::minesweeper_mostly(),
        System::markus_default(),
        System::FfMalloc,
        System::ScudoBaseline,
        System::minesweeper_scudo(),
        System::CrCount,
        System::Oscar,
        System::PSweeper,
    ]
}

#[test]
fn every_mitigation_defeats_the_figure2_exploit() {
    assert_eq!(
        run_exploit(&figure2_attack(), System::Baseline).outcome,
        ExploitOutcome::Compromised,
        "sanity: baseline must be exploitable"
    );
    for sys in all_mitigations() {
        // Bare Scudo is an (honestly modelled) *probabilistic* defence:
        // when the randomized free list holds only the victim, the spray
        // deterministically wins — §6.2's point about why MineSweeper
        // upgrades such allocators rather than competing with them.
        if matches!(sys, System::ScudoBaseline) {
            continue;
        }
        let r = run_exploit(&figure2_attack(), sys);
        assert_ne!(
            r.outcome,
            ExploitOutcome::Compromised,
            "{} failed to stop the attack",
            sys.label()
        );
    }
    // The layered combination closes exactly that hole.
    let bare = run_exploit(&figure2_attack(), System::ScudoBaseline);
    let layered = run_exploit(&figure2_attack(), System::minesweeper_scudo());
    assert_eq!(bare.outcome, ExploitOutcome::Compromised);
    assert_ne!(layered.outcome, ExploitOutcome::Compromised);
    // DangSan nullifies rather than quarantines; the dispatch crashes.
    let r = run_exploit(&figure2_attack(), System::DangSan);
    assert_eq!(r.outcome, ExploitOutcome::CleanTermination);
}

#[test]
fn cost_characters_match_the_paper_taxonomy() {
    let profile = Profile { total_allocs: 6_000, ..Profile::demo() };
    let base = run(&profile, System::Baseline, 55);
    // Sweep-family systems sweep; count-family and page-family never do.
    let ms = run(&profile, System::minesweeper_default(), 55);
    let mu = run(&profile, System::markus_default(), 55);
    let ps = run(&profile, System::PSweeper, 55);
    assert!(ms.sweeps > 0 && mu.sweeps > 0 && ps.sweeps > 0);
    for sys in [System::CrCount, System::Oscar, System::DangSan, System::FfMalloc] {
        let m = run(&profile, sys, 55);
        assert_eq!(m.sweeps, 0, "{} should not sweep", sys.label());
        assert!(m.slowdown_vs(&base) >= 1.0);
    }
    // Oscar's syscall-per-allocation makes it the slowest of the
    // non-sweeping schemes on an allocation-heavy profile.
    let oscar = run(&profile, System::Oscar, 55);
    let cr = run(&profile, System::CrCount, 55);
    assert!(
        oscar.slowdown_vs(&base) > cr.slowdown_vs(&base),
        "oscar {} vs crcount {}",
        oscar.slowdown_vs(&base),
        cr.slowdown_vs(&base)
    );
}

#[test]
fn recorded_trace_replays_identically_to_generation() {
    let profile = Profile { total_allocs: 3_000, ..Profile::demo() };
    // Serialise the generated trace, parse it back, replay it: identical
    // metrics to running the generator directly.
    let text = recorded::write_trace(TraceGen::new(&profile, 9));
    let ops = recorded::read_trace(&text).expect("self-produced trace parses");
    let direct = run(&profile, System::minesweeper_default(), 9);
    let replayed = run_trace(&profile, System::minesweeper_default(), 9, ops);
    assert_eq!(direct.mutator_cycles, replayed.mutator_cycles);
    assert_eq!(direct.sweeps, replayed.sweeps);
    assert_eq!(direct.peak_rss, replayed.peak_rss);
}

#[test]
fn hand_written_trace_runs_under_every_system() {
    // A tiny "real program" trace brought in from outside.
    let text = "\
# build two trees, drop one, keep working, exit
A 0 4096
A 1 128
A 2 128
W 10000
F 1
A 3 65536
W 50000
F 2
F 3
";
    let ops = recorded::close_trace(recorded::read_trace(text).unwrap());
    for sys in all_mitigations() {
        let m = run_trace(&Profile::demo(), sys, 1, ops.clone());
        assert_eq!(m.allocs, 4, "{}", sys.label());
        assert_eq!(m.frees, 4, "{}: close_trace drains the leak", sys.label());
    }
}
